"""Result containers used by the benchmark harness.

Every container round-trips through plain JSON (``to_payload`` /
``from_payload``) so the fleet runner can persist one durable
``result.json`` per run and rebuild the full :class:`ExperimentResult`
when resuming or consolidating benchmark artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


def jsonify(value: Any) -> Any:
    """Coerce ``value`` (possibly holding numpy scalars/arrays) to plain JSON types."""
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    return str(value)


@dataclass
class SeriesResult:
    """A named (x, y) series, e.g. "response time vs stream length"."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "y"

    def append(self, x: float, y: float) -> None:
        """Append one (x, y) sample."""
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)

    def mean(self) -> float:
        """Mean of the y values (0 for an empty series)."""
        return sum(self.y) / len(self.y) if self.y else 0.0

    def last(self) -> Optional[float]:
        """Last y value, or ``None`` for an empty series."""
        return self.y[-1] if self.y else None

    def as_rows(self) -> List[Dict[str, float]]:
        """The series as a list of {x_label: x, y_label: y} rows."""
        return [{self.x_label: x, self.y_label: y} for x, y in zip(self.x, self.y)]

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict representation (inverse of :meth:`from_payload`)."""
        return {
            "name": self.name,
            "x": [float(v) for v in self.x],
            "y": [float(v) for v in self.y],
            "x_label": self.x_label,
            "y_label": self.y_label,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SeriesResult":
        """Rebuild a series from :meth:`to_payload` output."""
        return cls(**payload)


@dataclass
class RunMetrics:
    """Measurements collected while running one algorithm over one stream."""

    algorithm: str
    stream_name: str
    n_points: int = 0
    total_seconds: float = 0.0
    #: Stream length (points processed) at each checkpoint.
    checkpoints: List[int] = field(default_factory=list)
    #: Average per-point response time (µs) inside each checkpoint window,
    #: including the amortised cost of bringing the clustering up to date.
    response_time_us: List[float] = field(default_factory=list)
    #: Throughput (points/second) inside each checkpoint window.
    throughput: List[float] = field(default_factory=list)
    #: Wall-clock cost (ms) of one clustering request at each checkpoint.
    clustering_request_ms: List[float] = field(default_factory=list)
    #: CMM value over the recent-points window at each checkpoint.
    cmm: List[float] = field(default_factory=list)
    #: Number of macro clusters at each checkpoint.
    n_clusters: List[int] = field(default_factory=list)
    #: Free-form extra measurements (filter statistics, reservoir size, ...).
    extras: Dict[str, Any] = field(default_factory=dict)

    def series(self, field_name: str, y_label: Optional[str] = None) -> SeriesResult:
        """Expose one checkpointed measurement as a :class:`SeriesResult`."""
        values = getattr(self, field_name)
        return SeriesResult(
            name=self.algorithm,
            x=[float(c) for c in self.checkpoints],
            y=[float(v) for v in values],
            x_label="stream length",
            y_label=y_label or field_name,
        )

    @property
    def mean_response_time_us(self) -> float:
        """Mean per-point response time over all checkpoints (µs)."""
        if not self.response_time_us:
            return 0.0
        return sum(self.response_time_us) / len(self.response_time_us)

    @property
    def mean_throughput(self) -> float:
        """Mean throughput over all checkpoints (points/second)."""
        if not self.throughput:
            return 0.0
        return sum(self.throughput) / len(self.throughput)

    @property
    def mean_cmm(self) -> float:
        """Mean CMM over all checkpoints."""
        if not self.cmm:
            return 0.0
        return sum(self.cmm) / len(self.cmm)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict representation (inverse of :meth:`from_payload`)."""
        return jsonify(
            {
                "algorithm": self.algorithm,
                "stream_name": self.stream_name,
                "n_points": self.n_points,
                "total_seconds": self.total_seconds,
                "checkpoints": self.checkpoints,
                "response_time_us": self.response_time_us,
                "throughput": self.throughput,
                "clustering_request_ms": self.clustering_request_ms,
                "cmm": self.cmm,
                "n_clusters": self.n_clusters,
                "extras": self.extras,
            }
        )

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RunMetrics":
        """Rebuild run metrics from :meth:`to_payload` output."""
        return cls(**payload)


@dataclass
class ExperimentResult:
    """The outcome of one experiment (one table or figure of the paper)."""

    experiment_id: str
    description: str
    series: Dict[str, SeriesResult] = field(default_factory=dict)
    tables: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    runs: List[RunMetrics] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_series(self, key: str, series: SeriesResult) -> None:
        """Register a named series."""
        self.series[key] = series

    def add_table(self, key: str, rows: List[Dict[str, Any]]) -> None:
        """Register a named table (list of row dicts)."""
        self.tables[key] = rows

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict representation (inverse of :meth:`from_payload`).

        The fleet runner persists this as each run's durable ``result.json``;
        resuming a matrix rebuilds the result from the payload instead of
        re-executing the run, so everything the benchmark artifacts and gates
        consume (tables, series, metadata, per-run metrics) must survive the
        round trip.
        """
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "series": {key: s.to_payload() for key, s in self.series.items()},
            "tables": jsonify(self.tables),
            "runs": [run.to_payload() for run in self.runs],
            "metadata": jsonify(self.metadata),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Rebuild an experiment result from :meth:`to_payload` output."""
        return cls(
            experiment_id=payload["experiment_id"],
            description=payload["description"],
            series={
                key: SeriesResult.from_payload(item)
                for key, item in payload.get("series", {}).items()
            },
            tables=dict(payload.get("tables", {})),
            runs=[RunMetrics.from_payload(item) for item in payload.get("runs", [])],
            metadata=dict(payload.get("metadata", {})),
        )

    def to_text(self) -> str:
        """Render every table and series of the experiment as plain text."""
        from repro.harness.reporting import format_series, format_table

        lines = [f"== {self.experiment_id}: {self.description} =="]
        for key, rows in self.tables.items():
            lines.append("")
            lines.append(f"-- table: {key} --")
            lines.append(format_table(rows))
        for key, series in self.series.items():
            lines.append("")
            lines.append(f"-- series: {key} --")
            lines.append(format_series(series))
        return "\n".join(lines)
