"""Ablation experiments for the design choices called out in DESIGN.md.

These go beyond the paper's own evaluation: each experiment isolates one
design decision of EDMStream (or one substrate choice of this reproduction)
and measures its effect, using the same result containers and reporting as
the Section 6 experiments.

* :func:`experiment_decay_ablation` — how the decay half-life affects the
  ability to follow an abruptly drifting stream (the decay model is what
  distinguishes *stream* clustering from dynamic clustering, Section 7).
* :func:`experiment_beta_ablation` — effect of the active-threshold
  multiplier β on the number of active cells, the reservoir size and
  quality (Section 4.3).
* :func:`experiment_index_ablation` — per-query cost of the three
  nearest-seed indexes (brute force, uniform grid, KD-tree) as the number
  of seeds grows.
* :func:`experiment_tracking_comparison` — EDMStream's online evolution log
  versus the offline MONIC and MEC trackers run over periodic snapshots of
  the same model (Sections 1 and 7: "existing solutions need an additional
  offline cluster evolution detecting procedure").
* :func:`experiment_cftree_vs_dptree` — DP-Tree-based EDMStream versus the
  CF-Tree-based BIRCH on a drifting stream (the structural comparison of
  Section 7).
"""

from __future__ import annotations

import time as _time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import Birch
from repro.core import EDMStream
from repro.core.decay import DecayModel
from repro.harness.results import ExperimentResult, SeriesResult
from repro.harness.runner import StreamRunner
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex
from repro.streams import SDSGenerator
from repro.streams.drift import GaussianMixture, abrupt_drift_stream
from repro.streams.stream import DataStream
from repro.tracking import MECTracker, MonicTracker, SnapshotRecorder
from repro.tracking.adapter import compare_event_logs, events_from_external_transitions

__all__ = [
    "experiment_decay_ablation",
    "experiment_beta_ablation",
    "experiment_index_ablation",
    "experiment_tracking_comparison",
    "experiment_cftree_vs_dptree",
]


# --------------------------------------------------------------------- #
# shared drifting workload
# --------------------------------------------------------------------- #
def _drift_stream(n_points: int, rate: float = 1000.0, seed: int = 0) -> DataStream:
    """Two clusters that jump to new locations halfway through the stream."""
    before = GaussianMixture(
        centers=[(0.0, 0.0), (6.0, 0.0)], std=0.3, labels=[0, 1]
    )
    after = GaussianMixture(
        centers=[(0.0, 6.0), (6.0, 6.0)], std=0.3, labels=[2, 3]
    )
    return abrupt_drift_stream(
        before, after, n_points=n_points, drift_point=0.5, rate=rate, seed=seed,
        name="abrupt-drift",
    )


# --------------------------------------------------------------------- #
# decay ablation
# --------------------------------------------------------------------- #
def experiment_decay_ablation(
    n_points: int = 8000,
    rate: float = 1000.0,
    half_lives: Sequence[float] = (0.5, 2.0, 8.0, 1e9),
    seed: int = 0,
) -> ExperimentResult:
    """Effect of the decay half-life on recovering from an abrupt drift.

    ``half_lives`` are in seconds of stream time; the last (huge) value
    approximates "no decay", i.e. the dynamic-clustering setting the paper
    contrasts stream clustering against in Section 7.
    """
    result = ExperimentResult(
        experiment_id="ablation_decay",
        description="Decay half-life vs quality on an abruptly drifting stream",
    )
    stream = _drift_stream(n_points, rate=rate, seed=seed)
    rows = []
    for half_life in half_lives:
        # a^(λ·t) = 0.5 at t = half_life, with a = 0.998 fixed: λ = ln 0.5 / (t·ln a).
        decay_lambda = float(np.log(0.5) / (half_life * np.log(0.998)))
        model = EDMStream(
            radius=0.35,
            beta=0.0021,
            decay_a=0.998,
            decay_lambda=decay_lambda,
            stream_rate=rate,
        )
        runner = StreamRunner(checkpoint_every=max(500, n_points // 8), quality_window=400)
        label = "no decay" if half_life >= 1e6 else f"half-life {half_life:g}s"
        metrics = runner.run(model, stream, algorithm_name=label, stream_name=stream.name)
        result.runs.append(metrics)
        result.add_series(label, metrics.series("cmm", "CMM"))
        post_drift = [v for c, v in zip(metrics.checkpoints, metrics.cmm) if c > n_points // 2]
        rows.append(
            {
                "variant": label,
                "decay_lambda": decay_lambda,
                "mean_cmm": round(metrics.mean_cmm, 4),
                "post_drift_cmm": round(sum(post_drift) / len(post_drift), 4) if post_drift else 0.0,
                "final_clusters": metrics.n_clusters[-1] if metrics.n_clusters else 0,
                "active_cells": model.n_active_cells,
            }
        )
    result.add_table("summary", rows)
    return result


# --------------------------------------------------------------------- #
# beta ablation
# --------------------------------------------------------------------- #
def experiment_beta_ablation(
    n_points: int = 8000,
    rate: float = 1000.0,
    betas: Sequence[float] = (0.0005, 0.0021, 0.01, 0.05),
    seed: int = 11,
) -> ExperimentResult:
    """Effect of the active-threshold multiplier β (Section 4.3)."""
    result = ExperimentResult(
        experiment_id="ablation_beta",
        description="Active-threshold multiplier beta vs active cells / reservoir / quality",
    )
    generator = SDSGenerator(n_points=n_points, rate=rate, seed=seed)
    stream = generator.generate()
    rows = []
    for beta in betas:
        model = EDMStream(
            radius=0.3,
            beta=beta,
            decay_a=0.998,
            decay_lambda=rate,
            stream_rate=rate,
        )
        runner = StreamRunner(checkpoint_every=max(500, n_points // 8), quality_window=400)
        label = f"beta={beta:g}"
        metrics = runner.run(model, stream, algorithm_name=label, stream_name=stream.name)
        result.runs.append(metrics)
        result.add_series(label, metrics.series("cmm", "CMM"))
        rows.append(
            {
                "beta": beta,
                "active_cells": model.n_active_cells,
                "inactive_cells": model.n_inactive_cells,
                "active_threshold": round(model.active_threshold(), 3),
                "mean_cmm": round(metrics.mean_cmm, 4),
                "clusters": model.n_clusters,
            }
        )
    result.add_table("summary", rows)
    return result


# --------------------------------------------------------------------- #
# index ablation
# --------------------------------------------------------------------- #
def experiment_index_ablation(
    seed_counts: Sequence[int] = (100, 500, 2000),
    dimension: int = 2,
    n_queries: int = 2000,
    radius: float = 0.3,
    seed: int = 0,
) -> ExperimentResult:
    """Per-query cost of the nearest-seed indexes as the seed set grows."""
    result = ExperimentResult(
        experiment_id="ablation_index",
        description="Nearest-seed index comparison (brute force / grid / KD-tree)",
    )
    rng = np.random.default_rng(seed)
    rows = []
    factories = {
        "BruteForce": lambda: BruteForceIndex(),
        "Grid": lambda: GridIndex(cell_width=radius),
        "KDTree": lambda: KDTreeIndex(),
    }
    series: Dict[str, SeriesResult] = {
        name: SeriesResult(name=name, x_label="number of seeds", y_label="query time (us)")
        for name in factories
    }
    for n_seeds in seed_counts:
        seeds = rng.uniform(0.0, 10.0, size=(n_seeds, dimension))
        queries = rng.uniform(0.0, 10.0, size=(n_queries, dimension))
        reference: Optional[List[Any]] = None
        for name, factory in factories.items():
            index = factory()
            for i, location in enumerate(seeds):
                index.insert(i, tuple(location))
            started = _time.perf_counter()
            answers = [index.nearest(tuple(q))[0] for q in queries]
            elapsed = _time.perf_counter() - started
            if reference is None:
                reference = answers
                agreement = 1.0
            else:
                agreement = sum(a == b for a, b in zip(answers, reference)) / len(answers)
            per_query_us = elapsed / n_queries * 1e6
            series[name].append(n_seeds, per_query_us)
            rows.append(
                {
                    "index": name,
                    "seeds": n_seeds,
                    "query_time_us": round(per_query_us, 2),
                    "agreement_with_brute_force": round(agreement, 4),
                }
            )
    for name, s in series.items():
        result.add_series(name, s)
    result.add_table("summary", rows)
    return result


# --------------------------------------------------------------------- #
# online vs offline evolution tracking
# --------------------------------------------------------------------- #
def experiment_tracking_comparison(
    n_points: int = 12000,
    rate: float = 1000.0,
    snapshot_every: float = 1.0,
    window_size: int = 600,
    seed: int = 7,
) -> ExperimentResult:
    """EDMStream's online evolution log vs offline MONIC / MEC tracking.

    One EDMStream model is run over the SDS evolution script; its native
    event log is the reference.  In parallel, a :class:`SnapshotRecorder`
    takes object-level snapshots of the *same* model every
    ``snapshot_every`` seconds and feeds them to MONIC and MEC.  The offline
    trackers should recover the same merge/split/emerge/disappear story —
    at the cost of an extra pass over the windowed points per snapshot,
    which is exactly the overhead the paper's online tracking avoids.
    """
    result = ExperimentResult(
        experiment_id="ablation_tracking",
        description="Online (DP-Tree) evolution tracking vs offline MONIC / MEC",
    )
    generator = SDSGenerator(n_points=n_points, rate=rate, seed=seed)
    stream = generator.generate()
    model = EDMStream(
        radius=0.3,
        beta=0.0021,
        decay_a=0.998,
        decay_lambda=rate,
        stream_rate=rate,
    )
    decay = DecayModel(a=0.998, lam=rate)
    recorder = SnapshotRecorder(model, window_size=window_size, decay=decay)
    monic = MonicTracker()
    mec = MECTracker()

    online_seconds = 0.0
    offline_seconds = 0.0
    next_snapshot = snapshot_every
    for point in stream:
        started = _time.perf_counter()
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
        online_seconds += _time.perf_counter() - started
        recorder.add_stream_point(point)
        if point.timestamp >= next_snapshot:
            started = _time.perf_counter()
            snapshot = recorder.snapshot(time=point.timestamp)
            monic.observe(snapshot)
            mec.observe(snapshot)
            offline_seconds += _time.perf_counter() - started
            next_snapshot += snapshot_every

    native_events = model.evolution.events
    monic_events = events_from_external_transitions(monic.external_transitions)
    mec_events = events_from_external_transitions(mec.transitions)

    def _event_counts(events) -> Dict[str, int]:
        counts = {"emerge": 0, "disappear": 0, "split": 0, "merge": 0}
        for event in events:
            key = event.event_type.value
            if key in counts:
                counts[key] += 1
        return counts

    counts_rows = [
        {"tracker": "EDMStream (online)", **_event_counts(native_events)},
        {"tracker": "MONIC (offline)", **_event_counts(monic_events)},
        {"tracker": "MEC (offline)", **_event_counts(mec_events)},
    ]
    result.add_table("event_counts", counts_rows)

    agreement_rows = []
    for name, events in (("MONIC", monic_events), ("MEC", mec_events)):
        report = compare_event_logs(native_events, events, time_tolerance=3.0)
        for event_type, values in report.items():
            agreement_rows.append({"tracker": name, "event_type": event_type, **values})
    result.add_table("agreement_vs_online", agreement_rows)

    result.add_table(
        "cost",
        [
            {
                "component": "EDMStream online updates (incl. native tracking)",
                "seconds": round(online_seconds, 3),
            },
            {
                "component": "offline snapshotting + MONIC + MEC",
                "seconds": round(offline_seconds, 3),
            },
        ],
    )
    result.metadata["native_event_count"] = len(native_events)
    return result


# --------------------------------------------------------------------- #
# CF-Tree (BIRCH) vs DP-Tree (EDMStream)
# --------------------------------------------------------------------- #
def experiment_cftree_vs_dptree(
    n_points: int = 8000,
    rate: float = 1000.0,
    seed: int = 3,
) -> ExperimentResult:
    """BIRCH (CF-Tree, no decay) vs EDMStream (DP-Tree, decayed) under drift."""
    result = ExperimentResult(
        experiment_id="ablation_cftree",
        description="CF-Tree (BIRCH) vs DP-Tree (EDMStream) on an abruptly drifting stream",
    )
    stream = _drift_stream(n_points, rate=rate, seed=seed)
    contenders: Dict[str, Any] = {
        "EDMStream": EDMStream(
            radius=0.35,
            beta=0.0021,
            decay_a=0.998,
            decay_lambda=rate,
            stream_rate=rate,
        ),
        "BIRCH": Birch(threshold=0.35, branching_factor=8, max_leaf_entries=8),
    }
    rows = []
    for name, algorithm in contenders.items():
        runner = StreamRunner(checkpoint_every=max(500, n_points // 8), quality_window=400)
        metrics = runner.run(algorithm, stream, algorithm_name=name, stream_name=stream.name)
        result.runs.append(metrics)
        result.add_series(f"cmm/{name}", metrics.series("cmm", "CMM"))
        result.add_series(
            f"response/{name}", metrics.series("response_time_us", "response time (us)")
        )
        post_drift = [v for c, v in zip(metrics.checkpoints, metrics.cmm) if c > n_points // 2]
        summary = {
            "algorithm": name,
            "mean_cmm": round(metrics.mean_cmm, 4),
            "post_drift_cmm": round(sum(post_drift) / len(post_drift), 4) if post_drift else 0.0,
            "mean_response_us": round(metrics.mean_response_time_us, 2),
            "final_clusters": metrics.n_clusters[-1] if metrics.n_clusters else 0,
        }
        if name == "BIRCH":
            summary["summaries"] = algorithm.n_leaf_entries
            summary["tree_height"] = algorithm.tree_height
        else:
            summary["summaries"] = algorithm.n_active_cells
        rows.append(summary)
    result.add_table("summary", rows)
    return result
