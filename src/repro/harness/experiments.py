"""Experiment drivers for the efficiency / quality figures of Section 6.

Each public function reproduces one table or figure of the paper's
evaluation and returns an :class:`~repro.harness.results.ExperimentResult`
holding the same series/rows the paper plots.  The corresponding
pytest-benchmark entry points live in ``benchmarks/``.

Figures covered here: 9 (response time), 10 (throughput), 11 (filtering
ablation), 12 (dimensionality), 13 (quality), 14 (stream rate), 16 (outlier
reservoir), 17 (radius), plus Table 2 (datasets) and the DP-Tree ablation.
The evolution-centric experiments (Figures 6-8, 15, Tables 3-4) live in
:mod:`repro.harness.scenarios`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    CluStream,
    DBStream,
    DenStream,
    DStream,
    MRStream,
    PeriodicDPStream,
)
from repro.core import EDMStream
from repro.harness.results import ExperimentResult, SeriesResult
from repro.harness.runner import StreamRunner
from repro.streams import (
    HDSGenerator,
    SDSGenerator,
    covertype_surrogate,
    kddcup99_surrogate,
    pamap2_surrogate,
)
from repro.streams.real import dataset_catalog
from repro.streams.stream import DataStream

# --------------------------------------------------------------------- #
# dataset and algorithm factories
# --------------------------------------------------------------------- #

#: The three real-dataset surrogates used by Figures 9-11, 13 and 16-17.
REAL_DATASET_FACTORIES: Dict[str, Callable[..., DataStream]] = {
    "KDDCUP99": kddcup99_surrogate,
    "CoverType": covertype_surrogate,
    "PAMAP2": pamap2_surrogate,
}


def make_real_stream(
    name: str, n_points: int, rate: float = 1000.0, seed: Optional[int] = None
) -> DataStream:
    """Instantiate one of the real-dataset surrogates by paper name.

    ``seed=None`` keeps each surrogate's own fixed default seed, so runs
    stay bit-identical with the historical behaviour unless an explicit
    seed (e.g. from ``fleet run --seed``) is threaded through.
    """
    if name not in REAL_DATASET_FACTORIES:
        known = ", ".join(sorted(REAL_DATASET_FACTORIES))
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    return REAL_DATASET_FACTORIES[name](n_points=n_points, rate=rate, **_seed_kw(seed))


def _seed_kw(seed: Optional[int]) -> Dict[str, int]:
    """``{"seed": seed}`` when an explicit seed is set, else nothing."""
    return {} if seed is None else {"seed": seed}


def choose_radius(
    stream: DataStream, percentile: float = 2.0, sample_size: int = 1000, seed: int = 0
) -> float:
    """Choose the cluster-cell radius r as a percentile of pairwise distances.

    This follows the paper (Section 6.1 / 6.7): r is chosen like the cut-off
    distance ``dc`` of DP clustering, between 0.5% and 2% of the sorted
    pairwise distances.  A random sample keeps the cost bounded on large
    streams.
    """
    rng = np.random.default_rng(seed)
    n = len(stream)
    if n < 2:
        return 1.0
    size = min(sample_size, n)
    indices = rng.choice(n, size=size, replace=False)
    sample = np.asarray([stream[int(i)].as_tuple() for i in indices])
    squared = np.sum(sample ** 2, axis=1)
    dist_sq = squared[:, None] + squared[None, :] - 2.0 * sample @ sample.T
    np.maximum(dist_sq, 0.0, out=dist_sq)
    distances = np.sqrt(dist_sq[np.triu_indices(size, k=1)])
    positive = distances[distances > 0]
    if positive.size == 0:
        return 1.0
    return float(np.percentile(positive, percentile))


def _data_bounds(stream: DataStream, sample_size: int = 2000) -> Tuple[float, float]:
    size = min(sample_size, len(stream))
    sample = np.asarray([stream[i].as_tuple() for i in range(size)])
    return float(sample.min()), float(sample.max())


def _n_classes(stream: DataStream) -> int:
    labels = {p.label for p in stream.points if p.label is not None and p.label >= 0}
    return max(1, len(labels))


def default_algorithms(
    stream: DataStream,
    radius: Optional[float] = None,
    include: Sequence[str] = ("EDMStream", "D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
    rate: Optional[float] = None,
    edm_kwargs: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the competitor set of Section 6 with per-dataset parameters.

    The radius r (EDMStream), ε (DenStream, DBSTREAM) and grid size
    (D-Stream, MR-Stream) are all derived from the same pairwise-distance
    percentile so that every algorithm works at a comparable spatial
    granularity, mirroring the paper's "parameters set by referring to their
    papers" with equalised decay rates.
    """
    if radius is None:
        radius = choose_radius(stream)
    if rate is None:
        rate = stream.rate
    low, high = _data_bounds(stream)
    span = max(high - low, 1e-9)
    algorithms: Dict[str, Any] = {}
    edm_kwargs = dict(edm_kwargs or {})
    for name in include:
        if name == "EDMStream":
            params = dict(
                radius=radius,
                beta=0.0021,
                stream_rate=rate,
                decay_a=0.998,
                decay_lambda=1.0,
            )
            params.update(edm_kwargs)
            algorithms[name] = EDMStream(**params)
        elif name == "D-Stream":
            algorithms[name] = DStream(
                grid_size=max(radius, span / 64.0), decay_a=0.998, decay_lambda=1.0
            )
        elif name == "DenStream":
            algorithms[name] = DenStream(
                eps=radius, mu=5.0, beta=0.3, decay_a=2.0, decay_lambda=0.0028
            )
        elif name == "DBSTREAM":
            algorithms[name] = DBStream(
                radius=radius, decay_a=2.0, decay_lambda=0.0028, w_min=1.5,
                alpha_intersection=0.1,
            )
        elif name == "MR-Stream":
            algorithms[name] = MRStream(
                bounds=(low - 0.01 * span, high + 0.01 * span),
                max_height=5,
                decay_a=1.002,
                decay_lambda=-1.0,
            )
        elif name == "CluStream":
            algorithms[name] = CluStream(
                n_micro_clusters=100,
                n_macro_clusters=_n_classes(stream),
                horizon=max(10.0, len(stream) / rate),
            )
        elif name == "Periodic-DP":
            algorithms[name] = PeriodicDPStream(
                radius=radius, tau=4.0 * radius, stream_rate=rate
            )
        else:
            raise KeyError(f"unknown algorithm {name!r}")
    return algorithms


# --------------------------------------------------------------------- #
# Table 2 — dataset inventory
# --------------------------------------------------------------------- #
def experiment_table2(
    surrogate_points: int = 2000, seed: Optional[int] = None
) -> ExperimentResult:
    """Table 2: the dataset inventory (paper values + surrogate properties)."""
    result = ExperimentResult(
        experiment_id="table2",
        description="Datasets (paper values and generated surrogate properties)",
    )
    result.add_table("paper", dataset_catalog())

    generated_rows = []
    seed_kw = _seed_kw(seed)
    generators = {
        "SDS": lambda: SDSGenerator(n_points=surrogate_points, **seed_kw).generate(),
        "HDS-10d": lambda: HDSGenerator(
            dimension=10, n_points=surrogate_points, **seed_kw
        ).generate(),
        "KDDCUP99": lambda: kddcup99_surrogate(n_points=surrogate_points, **seed_kw),
        "CoverType": lambda: covertype_surrogate(n_points=surrogate_points, **seed_kw),
        "PAMAP2": lambda: pamap2_surrogate(n_points=surrogate_points, **seed_kw),
    }
    for name, factory in generators.items():
        stream = factory()
        generated_rows.append(
            {
                "name": stream.name,
                "instances": len(stream),
                "dim": stream.dimension,
                "clusters": _n_classes(stream),
                "suggested_r": round(choose_radius(stream), 4),
            }
        )
    result.add_table("surrogates", generated_rows)
    return result


# --------------------------------------------------------------------- #
# Figures 9 and 10 — response time and throughput
# --------------------------------------------------------------------- #
def experiment_response_time(
    datasets: Sequence[str] = ("KDDCUP99", "CoverType", "PAMAP2"),
    algorithms: Sequence[str] = ("EDMStream", "D-Stream", "DenStream", "DBSTREAM"),
    n_points: int = 10000,
    checkpoint_every: int = 2500,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 9: average response time vs stream length, per dataset and algorithm."""
    result = ExperimentResult(
        experiment_id="fig9",
        description="Response time (µs per point, incl. amortised offline step) vs stream length",
    )
    summary_rows = []
    for dataset in datasets:
        stream = make_real_stream(dataset, n_points, seed=seed)
        radius = choose_radius(stream)
        competitors = default_algorithms(stream, radius=radius, include=algorithms)
        runner = StreamRunner(
            checkpoint_every=checkpoint_every, evaluate_quality=False
        )
        for name, algorithm in competitors.items():
            metrics = runner.run(algorithm, stream, algorithm_name=name, stream_name=dataset)
            result.runs.append(metrics)
            result.add_series(
                f"{dataset}/{name}", metrics.series("response_time_us", "response time (us)")
            )
            summary_rows.append(
                {
                    "dataset": dataset,
                    "algorithm": name,
                    "mean_response_us": round(metrics.mean_response_time_us, 2),
                }
            )
    result.add_table("summary", summary_rows)
    result.metadata["speedups"] = _speedup_table(summary_rows, "mean_response_us", invert=False)
    return result


def experiment_throughput(
    datasets: Sequence[str] = ("KDDCUP99", "CoverType", "PAMAP2"),
    algorithms: Sequence[str] = ("EDMStream", "D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
    n_points: int = 10000,
    checkpoint_every: int = 2500,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 10: throughput (points per second) vs stream length.

    The paper's stress test removes the arrival-rate limit but still requires
    the clustering result to stay up to date (that is what "response to a
    cluster update" means), so the headline metric reported here is the
    *real-time throughput* — the number of points per second an algorithm can
    sustain while keeping its clustering current, i.e. the reciprocal of the
    Figure 9 response time.  The amortised throughput (offline step paid only
    once per ``checkpoint_every`` points) is reported alongside for
    reference.
    """
    result = ExperimentResult(
        experiment_id="fig10",
        description="Throughput (points/second) vs stream length",
    )
    summary_rows = []
    for dataset in datasets:
        stream = make_real_stream(dataset, n_points, seed=seed)
        radius = choose_radius(stream)
        competitors = default_algorithms(stream, radius=radius, include=algorithms)
        runner = StreamRunner(checkpoint_every=checkpoint_every, evaluate_quality=False)
        for name, algorithm in competitors.items():
            metrics = runner.run(algorithm, stream, algorithm_name=name, stream_name=dataset)
            result.runs.append(metrics)
            realtime = SeriesResult(
                name=name,
                x=[float(c) for c in metrics.checkpoints],
                y=[1e6 / max(us, 1e-9) for us in metrics.response_time_us],
                x_label="stream length",
                y_label="points per second (clustering kept current)",
            )
            result.add_series(f"{dataset}/{name}", realtime)
            result.add_series(
                f"{dataset}/{name}/amortised",
                metrics.series("throughput", "points per second (offline step amortised)"),
            )
            summary_rows.append(
                {
                    "dataset": dataset,
                    "algorithm": name,
                    "mean_throughput": round(realtime.mean(), 1),
                    "mean_amortised_throughput": round(metrics.mean_throughput, 1),
                }
            )
    result.add_table("summary", summary_rows)
    result.metadata["speedups"] = _speedup_table(summary_rows, "mean_throughput", invert=True)
    return result


def experiment_batch_throughput(
    datasets: Sequence[str] = ("SDS", "HDS-10d", "KDDCUP99", "CoverType", "PAMAP2"),
    batch_sizes: Sequence[int] = (64, 256),
    n_points: int = 16000,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 10 extension: micro-batch vs sequential ingestion throughput.

    For each workload an identical EDMStream configuration ingests the same
    stream once through the sequential ``learn_one`` loop and once per batch
    size through the :class:`~repro.core.batch.BatchIngestor` path, timing
    pure ingestion wall-clock.  Because the two paths produce identical
    clusterings (see ``tests/test_batch_ingest.py``), the throughput ratio
    isolates the cost of per-point interpreter overhead that micro-batching
    amortises.  ``SDS`` and ``HDS-10d`` are the paper's own synthetic
    workloads; the three real-dataset surrogates are reported alongside.
    """
    import time as _time

    result = ExperimentResult(
        experiment_id="fig10_batch",
        description="Micro-batch vs sequential ingestion throughput (points/second)",
    )
    rows = []
    for dataset in datasets:
        if dataset == "SDS":
            stream = SDSGenerator(
                n_points=n_points, rate=1000.0, seed=7 if seed is None else seed
            ).generate()
            radius = 0.3
        elif dataset.startswith("HDS"):
            dimension = int(dataset.split("-")[1].rstrip("d")) if "-" in dataset else 10
            stream = HDSGenerator(
                dimension=dimension, n_points=n_points, **_seed_kw(seed)
            ).generate()
            radius = HDSGenerator.paper_radius(dimension)
        else:
            stream = make_real_stream(dataset, n_points, seed=seed)
            radius = choose_radius(stream)

        def make_model() -> EDMStream:
            return EDMStream(radius=radius, beta=0.0021, stream_rate=stream.rate)

        timings: Dict[str, float] = {}
        for mode, batch_size in [("sequential", None)] + [
            (f"batch-{size}", size) for size in batch_sizes
        ]:
            model = make_model()
            started = _time.perf_counter()
            model.learn_many(stream, batch_size=batch_size)
            elapsed = _time.perf_counter() - started
            timings[mode] = elapsed
            rows.append(
                {
                    "dataset": dataset,
                    "mode": mode,
                    "synthetic": dataset in ("SDS",) or dataset.startswith("HDS"),
                    "points_per_second": round(len(stream) / elapsed, 1),
                    "speedup_vs_sequential": round(timings["sequential"] / elapsed, 3),
                    "clusters": model.n_clusters,
                    "active_cells": model.n_active_cells,
                    "cell_state_bytes": model.memory_footprint()["total"],
                    "arena_bytes": model._cells.nbytes(),
                }
            )
        series = SeriesResult(
            name=dataset,
            x=[0] + list(batch_sizes),
            y=[len(stream) / timings[mode] for mode in timings],
            x_label="batch size (0 = sequential)",
            y_label="points per second",
        )
        result.add_series(dataset, series)
    result.add_table("summary", rows)
    result.metadata["n_points"] = n_points
    result.metadata["batch_sizes"] = list(batch_sizes)
    return result


def experiment_query_throughput(
    n_points: int = 16000,
    n_queries: int = 10000,
    batch_sizes: Sequence[int] = (1, 64, 4096),
    seed: int = 7,
) -> ExperimentResult:
    """Serving-side query throughput of the snapshot API on the SDS workload.

    After ingesting the SDS stream, a fixed query set is answered through
    the per-point ``model.predict_one`` loop (what a caller predating
    ``predict_many`` pays: one Python call and one single-row kernel
    invocation per query) and through the vectorised
    ``ClusterSnapshot.predict_many`` at several batch sizes (each batch size
    chunks the query set, mimicking request batching in a serving layer).
    Both run off the same published snapshot — ``predict_one`` is
    snapshot-served too since the ingest/serve split — so the measured gap
    isolates the per-call overhead that batching amortises, and the label
    equality asserted here checks the blocked kernel against the single-row
    path.  Emitted to ``BENCH_query.json`` by the CI benchmark-smoke job,
    which gates on ``predict_many`` never being slower than the per-point
    loop.
    """
    import time as _time

    result = ExperimentResult(
        experiment_id="query_throughput",
        description="Snapshot predict_many vs per-point predict_one loop (points/second)",
    )
    stream = SDSGenerator(n_points=n_points, rate=1000.0, seed=seed).generate()
    model = EDMStream(radius=0.3, beta=0.0021, stream_rate=stream.rate)
    model.learn_many(stream)
    snapshot = model.request_clustering()

    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(stream), size=n_queries)
    queries = [stream[int(i)].values for i in indices]

    started = _time.perf_counter()
    loop_labels = [model.predict_one(q) for q in queries]
    loop_seconds = _time.perf_counter() - started

    rows = [
        {
            "mode": "predict_one-loop",
            "batch_size": 0,
            "points_per_second": round(n_queries / loop_seconds, 1),
            "speedup_vs_loop": 1.0,
        }
    ]
    for batch_size in batch_sizes:
        started = _time.perf_counter()
        batch_labels: List[int] = []
        for start in range(0, n_queries, batch_size):
            batch_labels.extend(
                int(v) for v in snapshot.predict_many(queries[start : start + batch_size])
            )
        elapsed = _time.perf_counter() - started
        if batch_labels != [int(v) for v in loop_labels]:
            raise AssertionError(
                "batched predict_many disagrees with the single-row predict_one path"
            )
        rows.append(
            {
                "mode": f"predict_many-{batch_size}",
                "batch_size": batch_size,
                "points_per_second": round(n_queries / elapsed, 1),
                "speedup_vs_loop": round(loop_seconds / elapsed, 3),
            }
        )
    result.add_table("summary", rows)
    result.add_series(
        "query_throughput",
        SeriesResult(
            name="snapshot queries",
            x=[row["batch_size"] for row in rows],
            y=[row["points_per_second"] for row in rows],
            x_label="query batch size (0 = per-point loop)",
            y_label="points per second",
        ),
    )
    result.metadata["n_points"] = n_points
    result.metadata["n_queries"] = n_queries
    result.metadata["snapshot"] = snapshot.summary()
    return result


# --------------------------------------------------------------------- #
# Serving tier — shared-memory snapshot fan-out across query workers
# --------------------------------------------------------------------- #
def experiment_serving(
    n_points: int = 4000,
    worker_counts: Sequence[int] = (1, 4, 8),
    measure_s: float = 2.0,
    warmup_s: float = 0.5,
    query_batch: int = 256,
    latency_queries: int = 200,
    seed: int = 7,
) -> ExperimentResult:
    """Serving tier: sustained QPS and latency of the shared-memory fan-out.

    For each worker count a full :class:`~repro.serving.ServingCluster` is
    stood up — one ingest process looping the SDS stream through a live
    ``EDMStream`` and publishing every snapshot into shared memory, plus N
    query workers serving ``predict_many`` off the mapped arrays.  Three
    quantities are measured *while ingestion keeps running*:

    * **sustained QPS** — pipelined batch dispatch with exactly one
      outstanding request per worker (the throughput ceiling of the pipe
      transport: workers never idle waiting for the dispatcher);
    * **per-call latency (p50/p99)** — individual ``predict`` calls issued
      through the asyncio :class:`~repro.serving.MicroBatchFrontend` over a
      :class:`~repro.serving.WorkerPoolBackend` at modest concurrency, i.e.
      what a single interactive caller observes including coalescing delay;
    * **snapshot staleness** — per-answer age of the served snapshot, as
      reported by the worker alongside each reply.

    Workers deliberately run at lower scheduling priority than the ingest
    process (``nice`` +9), so on a saturated box added workers trade query
    throughput against each other, not against ingestion.  Emitted to
    ``BENCH_serving.json`` by ``benchmarks/bench_serving.py``, which gates
    the 4-worker/1-worker scaling ratio and segment hygiene.
    """
    import asyncio as _asyncio
    import time as _time
    from multiprocessing.connection import wait as _conn_wait

    from repro.serving import (
        MicroBatchFrontend,
        ServingCluster,
        WorkerPoolBackend,
        list_segments,
    )

    result = ExperimentResult(
        experiment_id="serving",
        description="Shared-memory snapshot fan-out: QPS/latency vs query workers",
    )

    def model_factory():
        return EDMStream(radius=0.3, beta=0.0021, stream_rate=1000.0)

    def stream_factory():
        return SDSGenerator(n_points=n_points, rate=1000.0, seed=seed).generate()

    query_stream = SDSGenerator(n_points=query_batch, rate=1000.0, seed=seed + 2)
    queries = np.asarray([p.values for p in query_stream.generate()])

    def pipelined_qps(cluster):
        """One outstanding batch per worker; count replies in the window."""
        connections = list(cluster.connections)
        for conn in connections:
            conn.send(("predict", queries, False))
        answered = 0
        staleness: List[float] = []
        measure_from = _time.perf_counter() + warmup_s
        deadline = measure_from + measure_s
        while _time.perf_counter() < deadline:
            for conn in _conn_wait(connections, timeout=0.2):
                reply = conn.recv()
                if reply[0] == "ok" and _time.perf_counter() >= measure_from:
                    answered += len(reply[1])
                    staleness.append(float(reply[3]))
                conn.send(("predict", queries, False))
        for conn in connections:  # drain the in-flight tail, uncounted
            if conn.poll(10.0):
                conn.recv()
        return answered / measure_s, staleness

    async def frontend_latency(cluster):
        backend = WorkerPoolBackend(cluster.connections)
        front = MicroBatchFrontend(backend, max_batch=32, max_delay=0.002)
        gate = _asyncio.Semaphore(8)
        latencies: List[float] = []

        async def one(point):
            async with gate:
                started = _time.perf_counter()
                await front.predict(point)
                latencies.append(_time.perf_counter() - started)

        await _asyncio.gather(
            *(one(queries[i % len(queries)]) for i in range(latency_queries))
        )
        await front.drain()
        return latencies

    rows = []
    for n_workers in worker_counts:
        with ServingCluster(
            model_factory, stream_factory, n_workers=n_workers, chunk_size=256
        ) as cluster:
            cluster.wait_until_serving(timeout_s=60.0)
            qps, staleness = pipelined_qps(cluster)
            latencies = _asyncio.run(frontend_latency(cluster))
            summary = cluster.summary()
            token = cluster.token
        latencies_ms = sorted(1000.0 * value for value in latencies)
        rows.append(
            {
                "workers": n_workers,
                "qps": round(qps, 1),
                "p50_ms": round(latencies_ms[len(latencies_ms) // 2], 3),
                "p99_ms": round(latencies_ms[int(0.99 * (len(latencies_ms) - 1))], 3),
                "staleness_p50_s": (
                    round(float(np.median(staleness)), 4) if staleness else None
                ),
                "staleness_max_s": round(max(staleness), 4) if staleness else None,
                "points_ingested": summary["points_ingested"],
                "snapshot_version": max(
                    w.get("snapshot_version", 0) for w in summary["workers"]
                ),
                "leaked_segments": len(list_segments(token)),
            }
        )

    baseline = next((row["qps"] for row in rows if row["workers"] == 1), None)
    for row in rows:
        row["scaling_vs_1w"] = round(row["qps"] / baseline, 2) if baseline else None
    result.add_table("summary", rows)
    result.add_series(
        "qps",
        SeriesResult(
            name="sustained QPS under ingestion",
            x=[row["workers"] for row in rows],
            y=[row["qps"] for row in rows],
            x_label="query workers",
            y_label="queries per second",
        ),
    )
    result.metadata["n_points"] = n_points
    result.metadata["query_batch"] = query_batch
    result.metadata["measure_s"] = measure_s
    return result


def _speedup_table(
    rows: List[Dict[str, Any]], value_key: str, invert: bool
) -> List[Dict[str, Any]]:
    """EDMStream's advantage over the best competitor, per dataset.

    ``invert=False`` treats smaller as better (times); ``invert=True`` treats
    larger as better (throughput).
    """
    speedups = []
    datasets = {row["dataset"] for row in rows}
    for dataset in sorted(datasets):
        edm = [r[value_key] for r in rows if r["dataset"] == dataset and r["algorithm"] == "EDMStream"]
        others = [
            r[value_key]
            for r in rows
            if r["dataset"] == dataset and r["algorithm"] != "EDMStream"
        ]
        if not edm or not others:
            continue
        if invert:
            best_other = max(others)
            ratio = edm[0] / best_other if best_other else float("inf")
        else:
            best_other = min(others)
            ratio = best_other / edm[0] if edm[0] else float("inf")
        speedups.append(
            {"dataset": dataset, "edmstream_vs_best_competitor": round(ratio, 2)}
        )
    return speedups


# --------------------------------------------------------------------- #
# Figure 11 — filtering ablation
# --------------------------------------------------------------------- #
def experiment_filtering(
    datasets: Sequence[str] = ("KDDCUP99", "CoverType", "PAMAP2"),
    n_points: int = 20000,
    checkpoint_every: int = 2500,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 11: accumulated dependency-update time without/with the filters."""
    variants = {
        "wf": dict(enable_density_filter=False, enable_triangle_filter=False),
        "df": dict(enable_density_filter=True, enable_triangle_filter=False),
        "df+tif": dict(enable_density_filter=True, enable_triangle_filter=True),
    }
    result = ExperimentResult(
        experiment_id="fig11",
        description="Accumulated dependency-update time (ms) for wf / df / df+tif",
    )
    summary_rows = []
    for dataset in datasets:
        stream = make_real_stream(dataset, n_points, seed=seed)
        radius = choose_radius(stream)
        for variant, flags in variants.items():
            model = EDMStream(radius=radius, stream_rate=stream.rate, **flags)
            series = SeriesResult(
                name=f"{dataset}/{variant}",
                x_label="stream length",
                y_label="accumulated update time (ms)",
            )
            processed = 0
            for point in stream:
                model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
                processed += 1
                if processed % checkpoint_every == 0:
                    series.append(processed, model.dependency_update_seconds * 1e3)
            series.append(processed, model.dependency_update_seconds * 1e3)
            result.add_series(f"{dataset}/{variant}", series)
            stats = model.filter_stats.as_dict()
            summary_rows.append(
                {
                    "dataset": dataset,
                    "variant": variant,
                    "update_time_ms": round(model.dependency_update_seconds * 1e3, 2),
                    "distance_computations": stats["distance_computations"],
                    "filter_rate": round(stats["filter_rate"], 4),
                }
            )
    result.add_table("summary", summary_rows)
    return result


# --------------------------------------------------------------------- #
# Figure 12 — dimensionality scaling
# --------------------------------------------------------------------- #
def experiment_dimensions(
    dimensions: Sequence[int] = (10, 30, 100, 300),
    algorithms: Sequence[str] = ("EDMStream", "D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
    n_points: int = 5000,
    checkpoint_every: int = 2500,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 12: response time vs data dimensionality on the HDS streams."""
    result = ExperimentResult(
        experiment_id="fig12",
        description="Response time (µs per point) vs data dimensionality (HDS)",
    )
    per_algorithm: Dict[str, SeriesResult] = {
        name: SeriesResult(name=name, x_label="dimensions", y_label="response time (us)")
        for name in algorithms
    }
    rows = []
    for dimension in dimensions:
        stream = HDSGenerator(
            dimension=dimension, n_points=n_points, **_seed_kw(seed)
        ).generate()
        radius = HDSGenerator.paper_radius(dimension)
        competitors = default_algorithms(stream, radius=radius, include=algorithms)
        runner = StreamRunner(checkpoint_every=checkpoint_every, evaluate_quality=False)
        for name, algorithm in competitors.items():
            metrics = runner.run(algorithm, stream, algorithm_name=name, stream_name=stream.name)
            result.runs.append(metrics)
            per_algorithm[name].append(dimension, metrics.mean_response_time_us)
            rows.append(
                {
                    "dimensions": dimension,
                    "algorithm": name,
                    "mean_response_us": round(metrics.mean_response_time_us, 2),
                }
            )
    for name, series in per_algorithm.items():
        result.add_series(name, series)
    result.add_table("summary", rows)
    return result


# --------------------------------------------------------------------- #
# Figures 13 and 14 — cluster quality
# --------------------------------------------------------------------- #
def experiment_quality(
    datasets: Sequence[str] = ("KDDCUP99", "CoverType", "PAMAP2"),
    algorithms: Sequence[str] = ("EDMStream", "D-Stream", "DenStream", "DBSTREAM"),
    n_points: int = 10000,
    checkpoint_every: int = 2500,
    quality_window: int = 400,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 13: CMM over the stream for EDMStream and the baselines."""
    result = ExperimentResult(
        experiment_id="fig13",
        description="Cluster quality (CMM) vs stream length",
    )
    rows = []
    for dataset in datasets:
        stream = make_real_stream(dataset, n_points, seed=seed)
        radius = choose_radius(stream)
        competitors = default_algorithms(stream, radius=radius, include=algorithms)
        runner = StreamRunner(
            checkpoint_every=checkpoint_every,
            evaluate_quality=True,
            quality_window=quality_window,
        )
        for name, algorithm in competitors.items():
            metrics = runner.run(algorithm, stream, algorithm_name=name, stream_name=dataset)
            result.runs.append(metrics)
            result.add_series(f"{dataset}/{name}", metrics.series("cmm", "CMM"))
            rows.append(
                {
                    "dataset": dataset,
                    "algorithm": name,
                    "mean_cmm": round(metrics.mean_cmm, 4),
                }
            )
    result.add_table("summary", rows)
    return result


def experiment_stream_rate(
    rates: Sequence[float] = (1000.0, 5000.0, 10000.0),
    dataset: str = "CoverType",
    n_points: int = 10000,
    checkpoint_every: int = 2500,
    quality_window: int = 400,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 14: EDMStream's CMM when the same stream arrives at different rates."""
    result = ExperimentResult(
        experiment_id="fig14",
        description="EDMStream cluster quality (CMM) at different stream rates",
    )
    base_stream = make_real_stream(dataset, n_points, seed=seed)
    radius = choose_radius(base_stream)
    rows = []
    for rate in rates:
        stream = base_stream.with_rate(rate)
        model = EDMStream(radius=radius, stream_rate=rate)
        runner = StreamRunner(
            checkpoint_every=checkpoint_every,
            evaluate_quality=True,
            quality_window=quality_window,
        )
        metrics = runner.run(
            model, stream, algorithm_name=f"{int(rate)}pt/s", stream_name=dataset
        )
        result.runs.append(metrics)
        result.add_series(f"{int(rate)}pt_s", metrics.series("cmm", "CMM"))
        rows.append(
            {"rate": int(rate), "mean_cmm": round(metrics.mean_cmm, 4)}
        )
    result.add_table("summary", rows)
    return result


# --------------------------------------------------------------------- #
# Figure 16 — outlier reservoir size
# --------------------------------------------------------------------- #
def experiment_reservoir(
    rates: Sequence[float] = (1000.0, 5000.0, 10000.0),
    datasets: Sequence[str] = ("CoverType", "PAMAP2"),
    n_points: int = 10000,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 16: measured outlier-reservoir size vs its theoretical upper bound."""
    result = ExperimentResult(
        experiment_id="fig16",
        description="Outlier reservoir size (measured) vs theoretical upper bound",
    )
    rows = []
    for dataset in datasets:
        base_stream = make_real_stream(dataset, n_points, seed=seed)
        radius = choose_radius(base_stream)
        for rate in rates:
            stream = base_stream.with_rate(rate)
            model = EDMStream(radius=radius, stream_rate=rate)
            for point in stream:
                model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
            series = SeriesResult(
                name=f"{dataset}/{int(rate)}pt_s",
                x_label="time (s)",
                y_label="reservoir size (cells)",
            )
            for time_point, size in model.reservoir_size_history:
                series.append(time_point, size)
            result.add_series(f"{dataset}/{int(rate)}pt_s", series)
            measured_max = max((s for _, s in model.reservoir_size_history), default=0)
            rows.append(
                {
                    "dataset": dataset,
                    "rate": int(rate),
                    "max_measured_size": measured_max,
                    "upper_bound": round(model.reservoir.size_upper_bound, 1),
                    "within_bound": measured_max <= model.reservoir.size_upper_bound,
                }
            )
    result.add_table("summary", rows)
    return result


# --------------------------------------------------------------------- #
# Figure 17 — effect of the cluster-cell radius r
# --------------------------------------------------------------------- #
def experiment_radius(
    percentiles: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    dataset: str = "PAMAP2",
    n_points: int = 10000,
    checkpoint_every: int = 2500,
    quality_window: int = 400,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Figure 17: cluster quality and response time when varying r."""
    result = ExperimentResult(
        experiment_id="fig17",
        description="Effect of the cluster-cell radius r (CMM and response time)",
    )
    stream = make_real_stream(dataset, n_points, seed=seed)
    rows = []
    for percentile in percentiles:
        radius = choose_radius(stream, percentile=percentile)
        model = EDMStream(radius=radius, stream_rate=stream.rate)
        runner = StreamRunner(
            checkpoint_every=checkpoint_every,
            evaluate_quality=True,
            quality_window=quality_window,
        )
        label = f"{percentile}%"
        metrics = runner.run(model, stream, algorithm_name=label, stream_name=dataset)
        result.runs.append(metrics)
        result.add_series(f"cmm/{label}", metrics.series("cmm", "CMM"))
        result.add_series(
            f"response/{label}", metrics.series("response_time_us", "response time (us)")
        )
        rows.append(
            {
                "percentile": label,
                "radius": round(radius, 4),
                "mean_cmm": round(metrics.mean_cmm, 4),
                "mean_response_us": round(metrics.mean_response_time_us, 2),
                "active_cells": model.n_active_cells,
                # Finer cells spread the same mass over more cluster-cells, so
                # the *total* cell count is the monotone quantity; the number
                # of cells above the (radius-independent) density threshold
                # can go either way.
                "total_cells": model.n_active_cells + model.n_inactive_cells,
            }
        )
    result.add_table("summary", rows)
    return result


# --------------------------------------------------------------------- #
# Ablation — incremental DP-Tree vs periodic batch DP
# --------------------------------------------------------------------- #
def experiment_dptree_ablation(
    dataset: str = "CoverType",
    n_points: int = 10000,
    checkpoint_every: int = 2500,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """DP-Tree ablation: EDMStream vs the same cells with periodic batch DP."""
    result = ExperimentResult(
        experiment_id="ablation_dptree",
        description="Incremental DP-Tree maintenance vs periodic batch DP reclustering",
    )
    stream = make_real_stream(dataset, n_points, seed=seed)
    radius = choose_radius(stream)
    competitors = default_algorithms(
        stream, radius=radius, include=("EDMStream", "Periodic-DP")
    )
    runner = StreamRunner(checkpoint_every=checkpoint_every, evaluate_quality=False)
    rows = []
    for name, algorithm in competitors.items():
        metrics = runner.run(algorithm, stream, algorithm_name=name, stream_name=dataset)
        result.runs.append(metrics)
        result.add_series(name, metrics.series("response_time_us", "response time (us)"))
        rows.append(
            {
                "algorithm": name,
                "mean_response_us": round(metrics.mean_response_time_us, 2),
                "mean_clustering_request_ms": round(
                    sum(metrics.clustering_request_ms) / max(1, len(metrics.clustering_request_ms)), 3
                ),
            }
        )
    result.add_table("summary", rows)
    return result


def _memory_stream(dataset: str, n_points: int, seed: int = 7) -> Tuple[DataStream, float]:
    """Workloads of the bounded-memory experiment: SDS, HDS, gradual drift.

    Every workload carries background noise: sparse outlier cells are the
    cold mass the bounded tier exists to evict, and a noiseless mixture
    has no cold tail for a cap to reclaim.
    """
    if dataset == "SDS":
        stream = SDSGenerator(
            n_points=n_points, rate=1000.0, noise_fraction=0.05, seed=seed
        ).generate()
        return stream, 0.3
    if dataset.startswith("HDS"):
        dimension = int(dataset.split("-")[1].rstrip("d")) if "-" in dataset else 10
        # center_spread of ~10 grid boxes keeps the clusters separated at the
        # paper radius (the default spread of one box merges them all), so the
        # footprint splits into a hot cluster core plus an evictable noise tail.
        stream = HDSGenerator(
            dimension=dimension,
            n_points=n_points,
            noise_fraction=0.05,
            center_spread=10.0 * HDSGenerator.paper_radius(dimension),
            seed=seed,
        ).generate()
        return stream, HDSGenerator.paper_radius(dimension)
    if dataset == "Drift":
        from repro.streams.drift import GaussianMixture, gradual_drift_stream
        from repro.streams.point import StreamPoint

        before = GaussianMixture(
            centers=((0.0, 0.0), (4.0, 4.0), (0.0, 4.0)), std=0.3, labels=(0, 1, 2)
        )
        after = GaussianMixture(
            centers=((8.0, 8.0), (4.0, -4.0), (8.0, 0.0)), std=0.3, labels=(3, 4, 5)
        )
        stream = gradual_drift_stream(
            before, after, n_points=n_points, rate=1000.0, seed=seed
        )
        rng = np.random.default_rng(seed + 1)
        points = [
            StreamPoint(
                values=tuple(rng.uniform(-6.0, 12.0, size=2)),
                timestamp=point.timestamp,
                label=None,
                point_id=point.point_id,
            )
            if rng.random() < 0.05
            else point
            for point in stream.points
        ]
        return DataStream(points, name=stream.name, rate=stream.rate), 0.3
    return make_real_stream(dataset, n_points), None  # radius chosen by caller


def _run_memory_mode(
    model: EDMStream,
    stream: DataStream,
    batch_size: int,
    eval_every: int,
    quality_window: int,
) -> Dict[str, Any]:
    """Ingest a stream in eval-sized chunks, scoring quality on trailing windows.

    Returns the run's peak cell-state footprint (tier-sampled in bounded
    mode, chunk-sampled in exact mode), mean CMM / purity over the
    evaluation windows, wall-clock, and the sketch-tier counters.
    """
    import time as _time

    from repro.evaluation.cmm import CMM
    from repro.evaluation.external import purity

    cmm = CMM(outlier_label=model.outlier_label)
    cmm_values: List[float] = []
    purity_values: List[float] = []
    peak = 0
    started = _time.perf_counter()
    for start in range(0, len(stream), eval_every):
        chunk = stream.points[start : start + eval_every]
        model.learn_many(chunk, batch_size=batch_size)
        peak = max(peak, model.memory_footprint()["total"])
        labelled = [p for p in chunk[-quality_window:] if p.label is not None]
        if not labelled:
            continue
        truths = [p.label for p in labelled]
        predicted = [int(label) for label in model.predict_many([p.values for p in labelled])]
        purity_values.append(purity(truths, predicted))
        cmm_values.append(
            cmm.evaluate(
                [p.as_tuple() for p in labelled],
                truths,
                predicted,
                [p.timestamp for p in labelled],
            ).value
        )
    elapsed = _time.perf_counter() - started
    bounded = model.bounded_store
    if bounded is not None:
        peak = max(peak, bounded.peak_bytes)
    run: Dict[str, Any] = {
        "peak_bytes": peak,
        "cmm": sum(cmm_values) / max(1, len(cmm_values)),
        "purity": sum(purity_values) / max(1, len(purity_values)),
        "cmm_series": cmm_values,
        "elapsed_s": elapsed,
        "clusters": model.n_clusters,
    }
    if bounded is not None:
        run.update(bounded.stats())
    return run


def experiment_memory(
    datasets: Sequence[str] = ("SDS", "Drift", "HDS-10d"),
    n_points: int = 50_000,
    cap_fraction: float = 0.5,
    batch_size: int = 256,
    eval_every: int = 10_000,
    quality_window: int = 500,
    seed: int = 7,
) -> ExperimentResult:
    """Bounded-memory tier: bytes/point and quality degradation vs exact mode.

    Each workload is ingested twice through identical configurations: once
    unbounded (exact mode) to establish the peak cell-state footprint and
    reference quality, then again with ``memory_cap_bytes`` set to
    ``cap_fraction`` of that peak, forcing the sketch tier to evict the
    cold tail.  The capped rows report the peak footprint against the cap,
    bytes/point, eviction/revival counters, and CMM/purity deltas vs the
    exact run — the degradation the approximate tier trades for the
    memory bound.  Emitted to ``BENCH_memory.json`` by
    ``benchmarks/bench_memory.py`` and gated in CI.
    """
    result = ExperimentResult(
        experiment_id="memory",
        description="Bounded-memory tier: peak bytes and quality vs exact mode",
    )
    rows = []
    for dataset in datasets:
        stream, radius = _memory_stream(dataset, n_points, seed=seed)
        if radius is None:
            radius = choose_radius(stream)

        exact = EDMStream(radius=radius, beta=0.0021, stream_rate=stream.rate)
        exact_run = _run_memory_mode(exact, stream, batch_size, eval_every, quality_window)
        cap = max(int(exact_run["peak_bytes"] * cap_fraction), 32_768)
        capped = EDMStream(
            radius=radius,
            beta=0.0021,
            stream_rate=stream.rate,
            memory_cap_bytes=cap,
        )
        capped_run = _run_memory_mode(capped, stream, batch_size, eval_every, quality_window)

        def _drop(metric: str) -> float:
            reference = exact_run[metric]
            if reference <= 0:
                return 0.0
            return max(0.0, (reference - capped_run[metric]) / reference)

        rows.append(
            {
                "dataset": dataset,
                "mode": "exact",
                "peak_cell_state_bytes": exact_run["peak_bytes"],
                "bytes_per_point": round(exact_run["peak_bytes"] / len(stream), 2),
                "cmm": round(exact_run["cmm"], 4),
                "purity": round(exact_run["purity"], 4),
                "clusters": exact_run["clusters"],
                "elapsed_s": round(exact_run["elapsed_s"], 3),
            }
        )
        rows.append(
            {
                "dataset": dataset,
                "mode": "capped",
                "memory_cap_bytes": cap,
                "peak_cell_state_bytes": capped_run["peak_bytes"],
                "under_cap": capped_run["peak_bytes"] <= cap,
                "bytes_per_point": round(capped_run["peak_bytes"] / len(stream), 2),
                "cmm": round(capped_run["cmm"], 4),
                "purity": round(capped_run["purity"], 4),
                "cmm_drop": round(_drop("cmm"), 4),
                "purity_drop": round(_drop("purity"), 4),
                "evictions": capped_run["evictions"],
                "revivals": capped_run["revivals"],
                "cap_overflows": capped_run["cap_overflows"],
                "clusters": capped_run["clusters"],
                "elapsed_s": round(capped_run["elapsed_s"], 3),
            }
        )
        for mode, run in (("exact", exact_run), ("capped", capped_run)):
            if run["cmm_series"]:
                result.add_series(
                    f"{dataset}/{mode}",
                    SeriesResult(
                        name=f"{dataset}/{mode}",
                        x=list(range(1, len(run["cmm_series"]) + 1)),
                        y=run["cmm_series"],
                        x_label="evaluation window",
                        y_label="CMM",
                    ),
                )
    result.add_table("summary", rows)
    result.metadata["n_points"] = n_points
    result.metadata["cap_fraction"] = cap_fraction
    result.metadata["batch_size"] = batch_size
    return result


def experiment_obs_overhead(
    n_points: int = 16000,
    batch_size: int = 256,
    trials: int = 3,
    seed: int = 7,
) -> ExperimentResult:
    """Telemetry overhead: batch ingest with metrics on vs off.

    The same SDS stream is ingested through identical EDMStream
    configurations, alternating telemetry-off (``telemetry=None``, the
    null-object fast path) and telemetry-on (a live
    :class:`~repro.obs.Telemetry` with counters, phase timers and the
    event ring) trials.  Modes are interleaved and the best-of-``trials``
    wall clock is compared, so thermal drift cannot masquerade as
    instrumentation cost.  The run also asserts the observability contract
    that instrumentation is *observational only*: both modes must produce
    the identical clustering.  Emitted to ``BENCH_obs.json`` by
    ``benchmarks/bench_obs.py`` and gated in CI at
    ``BENCH_OBS_MAX_OVERHEAD`` (default 5%).
    """
    import time as _time

    from repro.obs import Telemetry

    result = ExperimentResult(
        experiment_id="obs",
        description="Telemetry overhead: batch ingest with metrics on vs off",
    )

    def canonical(model: EDMStream) -> Dict[Any, Any]:
        seed_of = {cid: tuple(model.tree.get(cid).seed) for cid in model.tree.cell_ids()}
        return {
            seed_of[root]: frozenset(seed_of[member] for member in members)
            for root, members in model.partition_snapshot().items()
        }

    best: Dict[str, float] = {"off": float("inf"), "on": float("inf")}
    per_trial: Dict[str, List[float]] = {"off": [], "on": []}
    partitions: Dict[str, Any] = {}
    clusters: Dict[str, int] = {}
    telemetry: Optional[Telemetry] = None
    for _ in range(trials):
        for mode in ("off", "on"):
            obs = Telemetry() if mode == "on" else None
            stream = SDSGenerator(n_points=n_points, rate=1000.0, seed=seed).generate()
            model = EDMStream(
                radius=0.3, beta=0.0021, stream_rate=stream.rate, telemetry=obs
            )
            started = _time.perf_counter()
            model.learn_many(stream, batch_size=batch_size)
            elapsed = _time.perf_counter() - started
            per_trial[mode].append(elapsed)
            best[mode] = min(best[mode], elapsed)
            partitions[mode] = canonical(model)
            clusters[mode] = model.n_clusters
            if mode == "on":
                telemetry = obs

    overhead = best["on"] / best["off"] - 1.0
    identical = partitions["off"] == partitions["on"] and clusters["off"] == clusters["on"]
    rows = [
        {
            "mode": mode,
            "best_elapsed_s": round(best[mode], 4),
            "points_per_second": round(n_points / best[mode], 1),
            "trial_elapsed_s": [round(t, 4) for t in per_trial[mode]],
            "clusters": clusters[mode],
        }
        for mode in ("off", "on")
    ]
    result.add_table("summary", rows)
    result.add_series(
        "overhead",
        SeriesResult(
            name="overhead",
            x=list(range(1, trials + 1)),
            y=[on / off - 1.0 for off, on in zip(per_trial["off"], per_trial["on"])],
            x_label="trial",
            y_label="telemetry overhead (on/off - 1)",
        ),
    )
    result.metadata["n_points"] = n_points
    result.metadata["batch_size"] = batch_size
    result.metadata["trials"] = trials
    result.metadata["overhead_ratio"] = round(overhead, 4)
    result.metadata["identical_clustering"] = identical
    if telemetry is not None:
        result.metadata["telemetry"] = {
            "phases": telemetry.phase_totals(),
            "event_counts": telemetry.events.counts(),
        }
    return result
