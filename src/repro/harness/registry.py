"""The experiment registry: one table every harness surface derives from.

Historically ``repro.harness.cli`` kept its own hard-coded id -> driver
table, which silently drifted from the drivers as experiments were added
(the ``serve`` and ``memory`` ids both landed as follow-up patches).  The
registry is now the single source of truth: the CLI's ``list`` output,
its ``run`` choices, and any programmatic lookup all derive from
:func:`all_experiments`, so a driver registered here is automatically
everywhere.

Registration is declarative — the table below names every experiment
with its description and default point budget; drivers are looked up
lazily so importing the registry stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.harness.results import ExperimentResult

__all__ = ["ExperimentSpec", "all_experiments", "get_experiment", "register"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, human description, driver factory."""

    experiment_id: str
    description: str
    #: Callable taking the (optional) point budget; ``None`` means the
    #: driver's own default.
    factory: Callable[[Optional[int]], ExperimentResult]

    def run(self, points: Optional[int] = None) -> ExperimentResult:
        """Execute the driver with an optional point-budget override."""
        return self.factory(points)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(
    experiment_id: str,
    description: str,
    factory: Callable[[Optional[int]], ExperimentResult],
) -> ExperimentSpec:
    """Add (or replace) one experiment in the registry."""
    spec = ExperimentSpec(experiment_id, description, factory)
    _REGISTRY[experiment_id] = spec
    return spec


def all_experiments() -> Dict[str, ExperimentSpec]:
    """Every registered experiment, id -> spec (a copy, sorted by id)."""
    _ensure_defaults()
    return {key: _REGISTRY[key] for key in sorted(_REGISTRY)}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment; raises ``KeyError`` with the known ids."""
    _ensure_defaults()
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id]


def _ensure_defaults() -> None:
    """Populate the registry with the built-in drivers (idempotent)."""
    if _REGISTRY:
        return
    from repro.harness import ablations, experiments, scenarios

    defaults = [
        (
            "table2",
            "Table 2 — dataset inventory",
            lambda points: experiments.experiment_table2(surrogate_points=points or 2000),
        ),
        (
            "fig7",
            "Figures 6-7 — SDS cluster evolution",
            lambda points: scenarios.experiment_evolution_sds(n_points=points or 20000),
        ),
        (
            "fig8",
            "Figure 8 / Table 3 — news-stream topic evolution",
            lambda points: scenarios.experiment_news_evolution(n_points=points or 8000),
        ),
        (
            "fig9",
            "Figure 9 — response time vs stream length",
            lambda points: experiments.experiment_response_time(n_points=points or 10000),
        ),
        (
            "fig10",
            "Figure 10 — throughput",
            lambda points: experiments.experiment_throughput(n_points=points or 10000),
        ),
        (
            "fig10_batch",
            "Figure 10 extension — micro-batch vs sequential ingestion throughput",
            lambda points: experiments.experiment_batch_throughput(n_points=points or 16000),
        ),
        (
            "query",
            "Serving extension — snapshot predict_many vs per-point query loop",
            lambda points: experiments.experiment_query_throughput(n_points=points or 16000),
        ),
        (
            "serve",
            "Serving tier — shared-memory snapshot fan-out QPS/latency vs workers",
            lambda points: experiments.experiment_serving(n_points=points or 4000),
        ),
        (
            "memory",
            "Bounded-memory tier — sketch-backed cold cells under a byte cap",
            lambda points: experiments.experiment_memory(n_points=points or 50000),
        ),
        (
            "fig11",
            "Figure 11 — dependency-update filtering ablation",
            lambda points: experiments.experiment_filtering(n_points=points or 20000),
        ),
        (
            "fig12",
            "Figure 12 — response time vs dimensionality",
            lambda points: experiments.experiment_dimensions(n_points=points or 5000),
        ),
        (
            "fig13",
            "Figure 13 — cluster quality (CMM)",
            lambda points: experiments.experiment_quality(n_points=points or 10000),
        ),
        (
            "fig14",
            "Figure 14 — cluster quality vs stream rate",
            lambda points: experiments.experiment_stream_rate(n_points=points or 10000),
        ),
        (
            "fig15",
            "Figure 15 / Table 4 — dynamic vs static tau",
            lambda points: scenarios.experiment_adaptive_tau(n_points=points or 20000),
        ),
        (
            "fig16",
            "Figure 16 — outlier reservoir size",
            lambda points: experiments.experiment_reservoir(n_points=points or 10000),
        ),
        (
            "fig17",
            "Figure 17 — effect of the cluster-cell radius",
            lambda points: experiments.experiment_radius(n_points=points or 10000),
        ),
        (
            "ablation",
            "Ablation — incremental DP-Tree vs periodic batch DP",
            lambda points: experiments.experiment_dptree_ablation(n_points=points or 10000),
        ),
        (
            "ablation_decay",
            "Ablation — decay half-life vs recovery from abrupt drift",
            lambda points: ablations.experiment_decay_ablation(n_points=points or 8000),
        ),
        (
            "ablation_beta",
            "Ablation — active-threshold multiplier beta",
            lambda points: ablations.experiment_beta_ablation(n_points=points or 8000),
        ),
        (
            "ablation_index",
            "Ablation — nearest-seed index comparison",
            lambda points: ablations.experiment_index_ablation(n_queries=points or 2000),
        ),
        (
            "ablation_tracking",
            "Ablation — online evolution tracking vs offline MONIC / MEC",
            lambda points: ablations.experiment_tracking_comparison(n_points=points or 12000),
        ),
        (
            "ablation_cftree",
            "Ablation — CF-Tree (BIRCH) vs DP-Tree (EDMStream) under drift",
            lambda points: ablations.experiment_cftree_vs_dptree(n_points=points or 8000),
        ),
    ]
    for experiment_id, description, factory in defaults:
        register(experiment_id, description, factory)
