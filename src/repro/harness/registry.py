"""The experiment registry: one table every harness surface derives from.

Historically ``repro.harness.cli`` kept its own hard-coded id -> driver
table, which silently drifted from the drivers as experiments were added
(the ``serve`` and ``memory`` ids both landed as follow-up patches).  The
registry is now the single source of truth: the CLI's ``list`` output,
its ``run`` choices, the fleet runner's matrix expansion, the benchmark
scripts under ``benchmarks/`` and the CI gates all derive from
:func:`all_experiments`, so a driver registered here is automatically
everywhere.

Since the fleet redesign an :class:`ExperimentSpec` is a full *run
contract*, not just an id -> factory pair:

* ``tags`` group experiments into runnable slices (``paper``,
  ``ablation``, ``scale``, ``bench`` — the last one is the CI benchmark
  matrix);
* ``default_points`` is the point budget ``run()`` applies when the
  caller does not override it;
* ``grid`` is the default parameter grid the fleet expands the spec
  into (most specs expand to a single run);
* ``bench`` (a :class:`BenchContract`) describes how the experiment runs
  *as a benchmark*: the exact parameters (resolved at run time so CI can
  tune workloads through ``BENCH_*`` environment knobs), the emitted
  ``BENCH_*.json`` artifact name, the artifact payload builder, and the
  gate assertions CI enforces.  The contracts live in
  :mod:`repro.harness.gates`.

Registration stays declarative and drivers are imported lazily, so
importing the registry is cheap.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.harness.results import ExperimentResult

__all__ = [
    "BenchContract",
    "ExperimentSpec",
    "all_experiments",
    "experiments_with_tag",
    "get_experiment",
    "register",
]


@dataclass(frozen=True)
class BenchContract:
    """How one experiment runs, is recorded, and is gated as a benchmark.

    Parameters
    ----------
    params:
        Zero-argument callable resolving the benchmark's driver kwargs at
        run time (so ``BENCH_*`` environment knobs are honoured).  The
        special key ``"points"`` is the point budget; everything else is
        forwarded to the driver.
    artifact:
        Name of the consolidated machine-readable artifact
        (``BENCH_*.json``) this benchmark emits, or ``None``.
    payload:
        Builds the artifact payload from the experiment result.  Required
        when ``artifact`` is set.  Must only consume what
        ``ExperimentResult.to_payload`` round-trips (tables, series,
        metadata), so artifacts can be rebuilt from resumed runs.
    gate:
        Assertion block run against the result (raises ``AssertionError``
        on violation); thresholds may read environment knobs.
    """

    params: Callable[[], Dict[str, Any]] = dict
    artifact: Optional[str] = None
    payload: Optional[Callable[[ExperimentResult], Dict[str, Any]]] = None
    gate: Optional[Callable[[ExperimentResult], None]] = None


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, description, driver factory, run contract."""

    experiment_id: str
    description: str
    #: Callable ``factory(points, **kwargs)``; ``points=None`` means the
    #: driver's own default.  Factories registered by the built-in table
    #: accept ``seed=`` and arbitrary driver kwargs; minimal legacy
    #: factories taking only ``points`` keep working (extra kwargs they
    #: cannot accept are dropped).
    factory: Callable[..., ExperimentResult]
    #: Slices this experiment belongs to (``bench`` marks the CI matrix).
    tags: Tuple[str, ...] = ()
    #: Point budget applied when the caller passes ``points=None``.
    default_points: Optional[int] = None
    #: Default parameter grid for fleet expansion: mapping of driver kwarg
    #: to the values to sweep (cartesian product).  Empty = one run.
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: Benchmark contract (params/artifact/payload/gate), if any.
    bench: Optional[BenchContract] = None

    def run(
        self,
        points: Optional[int] = None,
        seed: Optional[int] = None,
        **params: Any,
    ) -> ExperimentResult:
        """Execute the driver with optional point-budget/seed/param overrides.

        ``seed`` and extra ``params`` are forwarded to the factory when it
        accepts them (all built-in factories do); a legacy factory taking
        only ``points`` silently ignores them, keeping old registrations
        runnable.
        """
        kwargs = dict(params)
        if seed is not None:
            kwargs["seed"] = seed
        if kwargs and not self._accepts_kwargs():
            kwargs = {}
        return self.factory(points, **kwargs)

    def _accepts_kwargs(self) -> bool:
        try:
            signature = inspect.signature(self.factory)
        except (TypeError, ValueError):  # builtins without signatures
            return False
        return any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )

    def grid_combinations(self) -> Tuple[Dict[str, Any], ...]:
        """Expand :attr:`grid` into concrete parameter combinations.

        An empty grid yields one empty combination (a single run with the
        spec's defaults).
        """
        if not self.grid:
            return ({},)
        names = sorted(self.grid)
        return tuple(
            dict(zip(names, values))
            for values in itertools.product(*(self.grid[name] for name in names))
        )

    def bench_params(self) -> Dict[str, Any]:
        """Resolve the benchmark driver kwargs (``points`` key included)."""
        if self.bench is None:
            return {}
        return dict(self.bench.params())


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(
    experiment_id: str,
    description: str,
    factory: Callable[..., ExperimentResult],
    *,
    tags: Sequence[str] = (),
    default_points: Optional[int] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    bench: Optional[BenchContract] = None,
) -> ExperimentSpec:
    """Add (or replace) one experiment in the registry."""
    spec = ExperimentSpec(
        experiment_id,
        description,
        factory,
        tags=tuple(tags),
        default_points=default_points,
        grid=dict(grid or {}),
        bench=bench,
    )
    _REGISTRY[experiment_id] = spec
    return spec


def all_experiments() -> Dict[str, ExperimentSpec]:
    """Every registered experiment, id -> spec (a copy, sorted by id)."""
    _ensure_defaults()
    return {key: _REGISTRY[key] for key in sorted(_REGISTRY)}


def experiments_with_tag(tag: str) -> Dict[str, ExperimentSpec]:
    """The registered experiments carrying ``tag``, id -> spec, sorted."""
    return {
        key: spec for key, spec in all_experiments().items() if tag in spec.tags
    }


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment; raises ``KeyError`` with the known ids."""
    _ensure_defaults()
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id]


def _ensure_defaults() -> None:
    """Populate the registry with the built-in drivers (idempotent)."""
    if _REGISTRY:
        return
    from repro.harness import ablations, experiments, gates, scenarios

    contracts = gates.bench_contracts()

    def entry(
        experiment_id: str,
        description: str,
        factory: Callable[..., ExperimentResult],
        tags: Sequence[str],
        default_points: int,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
    ) -> None:
        register(
            experiment_id,
            description,
            factory,
            tags=tags,
            default_points=default_points,
            grid=grid,
            bench=contracts.get(experiment_id),
        )

    entry(
        "table2",
        "Table 2 — dataset inventory",
        lambda points, **kw: experiments.experiment_table2(
            surrogate_points=points or 2000, **kw
        ),
        ("paper", "table"),
        2000,
    )
    entry(
        "fig7",
        "Figures 6-7 — SDS cluster evolution",
        lambda points, **kw: scenarios.experiment_evolution_sds(
            n_points=points or 20000, **kw
        ),
        ("paper", "evolution"),
        20000,
    )
    entry(
        "fig8",
        "Figure 8 / Table 3 — news-stream topic evolution",
        lambda points, **kw: scenarios.experiment_news_evolution(
            n_points=points or 8000, **kw
        ),
        ("paper", "evolution"),
        8000,
    )
    entry(
        "fig9",
        "Figure 9 — response time vs stream length",
        lambda points, **kw: experiments.experiment_response_time(
            n_points=points or 10000, **kw
        ),
        ("paper", "efficiency"),
        10000,
    )
    entry(
        "fig10",
        "Figure 10 — throughput",
        lambda points, **kw: experiments.experiment_throughput(
            n_points=points or 10000, **kw
        ),
        ("paper", "efficiency"),
        10000,
    )
    entry(
        "fig10_batch",
        "Figure 10 extension — micro-batch vs sequential ingestion throughput",
        lambda points, **kw: experiments.experiment_batch_throughput(
            n_points=points or 16000, **kw
        ),
        ("scale", "bench"),
        16000,
    )
    entry(
        "query",
        "Serving extension — snapshot predict_many vs per-point query loop",
        lambda points, **kw: experiments.experiment_query_throughput(
            n_points=points or 16000, **kw
        ),
        ("scale", "bench"),
        16000,
    )
    entry(
        "serve",
        "Serving tier — shared-memory snapshot fan-out QPS/latency vs workers",
        lambda points, **kw: experiments.experiment_serving(
            n_points=points or 4000, **kw
        ),
        ("scale", "bench"),
        4000,
    )
    entry(
        "memory",
        "Bounded-memory tier — sketch-backed cold cells under a byte cap",
        lambda points, **kw: experiments.experiment_memory(
            n_points=points or 50000, **kw
        ),
        ("scale", "bench"),
        50000,
    )
    entry(
        "obs",
        "Observability — telemetry overhead and off/on clustering identity",
        lambda points, **kw: experiments.experiment_obs_overhead(
            n_points=points or 16000, **kw
        ),
        ("scale", "bench"),
        16000,
    )
    entry(
        "fig11",
        "Figure 11 — dependency-update filtering ablation",
        lambda points, **kw: experiments.experiment_filtering(
            n_points=points or 20000, **kw
        ),
        ("paper", "efficiency"),
        20000,
    )
    entry(
        "fig12",
        "Figure 12 — response time vs dimensionality",
        lambda points, **kw: experiments.experiment_dimensions(
            n_points=points or 5000, **kw
        ),
        ("paper", "efficiency"),
        5000,
    )
    entry(
        "fig13",
        "Figure 13 — cluster quality (CMM)",
        lambda points, **kw: experiments.experiment_quality(
            n_points=points or 10000, **kw
        ),
        ("paper", "quality"),
        10000,
    )
    entry(
        "fig14",
        "Figure 14 — cluster quality vs stream rate",
        lambda points, **kw: experiments.experiment_stream_rate(
            n_points=points or 10000, **kw
        ),
        ("paper", "quality"),
        10000,
    )
    entry(
        "fig15",
        "Figure 15 / Table 4 — dynamic vs static tau",
        lambda points, **kw: scenarios.experiment_adaptive_tau(
            n_points=points or 20000, **kw
        ),
        ("paper", "evolution"),
        20000,
    )
    entry(
        "fig16",
        "Figure 16 — outlier reservoir size",
        lambda points, **kw: experiments.experiment_reservoir(
            n_points=points or 10000, **kw
        ),
        ("paper", "efficiency"),
        10000,
    )
    entry(
        "fig17",
        "Figure 17 — effect of the cluster-cell radius",
        lambda points, **kw: experiments.experiment_radius(
            n_points=points or 10000, **kw
        ),
        ("paper", "quality"),
        10000,
    )
    entry(
        "ablation",
        "Ablation — incremental DP-Tree vs periodic batch DP",
        lambda points, **kw: experiments.experiment_dptree_ablation(
            n_points=points or 10000, **kw
        ),
        ("paper", "ablation"),
        10000,
    )
    entry(
        "ablation_decay",
        "Ablation — decay half-life vs recovery from abrupt drift",
        lambda points, **kw: ablations.experiment_decay_ablation(
            n_points=points or 8000, **kw
        ),
        ("ablation",),
        8000,
    )
    entry(
        "ablation_beta",
        "Ablation — active-threshold multiplier beta",
        lambda points, **kw: ablations.experiment_beta_ablation(
            n_points=points or 8000, **kw
        ),
        ("ablation",),
        8000,
    )
    entry(
        "ablation_index",
        "Ablation — nearest-seed index comparison",
        lambda points, **kw: ablations.experiment_index_ablation(
            n_queries=points or 2000, **kw
        ),
        ("ablation",),
        2000,
    )
    entry(
        "ablation_tracking",
        "Ablation — online evolution tracking vs offline MONIC / MEC",
        lambda points, **kw: ablations.experiment_tracking_comparison(
            n_points=points or 12000, **kw
        ),
        ("ablation",),
        12000,
    )
    entry(
        "ablation_cftree",
        "Ablation — CF-Tree (BIRCH) vs DP-Tree (EDMStream) under drift",
        lambda points, **kw: ablations.experiment_cftree_vs_dptree(
            n_points=points or 8000, **kw
        ),
        ("ablation",),
        8000,
    )
    _register_extras()


def _register_extras() -> None:
    """Import extra registration modules named in ``REPRO_REGISTRY_EXTRA``.

    The environment variable holds a comma-separated list of importable
    module names; importing each module is expected to call
    :func:`register`.  This is the hook test harnesses (and downstream
    deployments) use to add experiments visible to subprocess fleet runs.
    """
    import importlib
    import os

    extra = os.environ.get("REPRO_REGISTRY_EXTRA", "")
    for module_name in filter(None, (name.strip() for name in extra.split(","))):
        importlib.import_module(module_name)
