"""Plain-text rendering of experiment results.

The paper's figures are line plots; since this repository has no plotting
dependency the benches print the underlying series (same x axis, same y
axis, same competitor set) so the shape of each figure can be compared
directly against the paper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.harness.results import SeriesResult


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]]) -> str:
    """Format a list of row dicts as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    body = [
        " | ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    ]
    return "\n".join([header, separator, *body])


def format_series(series: SeriesResult, max_points: int = 25) -> str:
    """Format a series as a two-column table, sub-sampled to ``max_points`` rows."""
    if len(series) == 0:
        return f"{series.name}: (empty series)"
    indices = list(range(len(series)))
    if len(indices) > max_points:
        step = len(indices) / max_points
        indices = [int(i * step) for i in range(max_points)]
        if indices[-1] != len(series) - 1:
            indices.append(len(series) - 1)
    rows = [
        {series.x_label: series.x[i], f"{series.y_label} [{series.name}]": series.y[i]}
        for i in indices
    ]
    return format_table(rows)


def format_comparison(
    series_by_name: Dict[str, SeriesResult], max_points: int = 25
) -> str:
    """Format several series sharing an x axis as one wide table."""
    if not series_by_name:
        return "(no series)"
    first = next(iter(series_by_name.values()))
    indices = list(range(len(first)))
    if len(indices) > max_points:
        step = len(indices) / max_points
        indices = [int(i * step) for i in range(max_points)]
        if indices and indices[-1] != len(first) - 1:
            indices.append(len(first) - 1)
    rows = []
    for i in indices:
        row: Dict[str, Any] = {first.x_label: first.x[i]}
        for name, series in series_by_name.items():
            row[name] = series.y[i] if i < len(series.y) else ""
        rows.append(row)
    return format_table(rows)


def summary_row(label: str, **values: Any) -> Dict[str, Any]:
    """Build a one-row summary dict with a leading label column."""
    row: Dict[str, Any] = {"name": label}
    row.update(values)
    return row
