"""Batch Density Peaks (DP) clustering — Rodriguez & Laio, Science 2014.

For every point the algorithm computes

* its local density ρ — the number of points within the cut-off distance
  ``dc`` (Equation 1), optionally with a Gaussian kernel, and
* its dependent distance δ — the distance to the nearest point of higher
  density (Equation 2).

Cluster centres are points with anomalously large ρ *and* δ; every other
point is assigned to the same cluster as its nearest higher-density
neighbour (its *dependency*), following the dependency chain up to a peak.
Points with ρ ≤ ξ are outliers.

This implementation also exposes the dependency links so the equivalence
with the DP-Tree view (Definition 2: clusters are MSDSubTrees) can be tested
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class DensityPeaksResult:
    """Output of a batch DP clustering run.

    Attributes
    ----------
    labels:
        Cluster label per point (``-1`` for outliers).  Labels are the
        indices of the peak points.
    rho:
        Local density per point.
    delta:
        Dependent distance per point (the global density maximum gets the
        maximum pairwise distance, as in the original paper).
    dependency:
        Index of the nearest higher-density point per point (``-1`` for the
        global density maximum).
    peaks:
        Indices of the selected cluster centres.
    """

    labels: np.ndarray
    rho: np.ndarray
    delta: np.ndarray
    dependency: np.ndarray
    peaks: List[int] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        """Number of clusters found."""
        return len(self.peaks)

    def members(self, peak: int) -> np.ndarray:
        """Indices of the points assigned to the cluster centred at ``peak``."""
        return np.flatnonzero(self.labels == peak)


class DensityPeaks:
    """Batch Density Peaks clustering.

    Parameters
    ----------
    dc:
        Cut-off distance.  ``None`` selects it as the ``dc_percentile``
        quantile of the pairwise distances, the heuristic recommended by the
        original paper (between 0.5% and 2%).
    dc_percentile:
        Percentile (in percent) used when ``dc`` is None.
    kernel:
        ``"cutoff"`` counts neighbours within ``dc`` (Equation 1);
        ``"gaussian"`` uses the smooth kernel ``exp(-(d/dc)^2)`` which the
        original paper recommends for small datasets.
    xi:
        Density threshold below which points are outliers (ρ ≤ ξ).
    tau:
        Dependent-distance threshold: points with δ > τ and ρ > ξ are peaks.
        ``None`` defers peak selection to ``n_clusters``.
    n_clusters:
        When ``tau`` is None, select this many peaks by decreasing γ = ρ·δ.
    """

    def __init__(
        self,
        dc: Optional[float] = None,
        dc_percentile: float = 2.0,
        kernel: str = "cutoff",
        xi: float = 0.0,
        tau: Optional[float] = None,
        n_clusters: Optional[int] = None,
    ) -> None:
        if dc is not None and dc <= 0:
            raise ValueError(f"dc must be positive, got {dc}")
        if not 0.0 < dc_percentile <= 100.0:
            raise ValueError(f"dc_percentile must be in (0, 100], got {dc_percentile}")
        if kernel not in ("cutoff", "gaussian"):
            raise ValueError(f"kernel must be 'cutoff' or 'gaussian', got {kernel!r}")
        if tau is None and n_clusters is None:
            n_clusters = 2
        if n_clusters is not None and n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.dc = dc
        self.dc_percentile = dc_percentile
        self.kernel = kernel
        self.xi = xi
        self.tau = tau
        self.n_clusters = n_clusters

    # ------------------------------------------------------------------ #
    def _pairwise_distances(self, data: np.ndarray) -> np.ndarray:
        squared = np.sum(data ** 2, axis=1)
        gram = data @ data.T
        dist_sq = squared[:, None] + squared[None, :] - 2.0 * gram
        np.maximum(dist_sq, 0.0, out=dist_sq)
        return np.sqrt(dist_sq)

    def _select_dc(self, distances: np.ndarray) -> float:
        if self.dc is not None:
            return self.dc
        n = distances.shape[0]
        upper = distances[np.triu_indices(n, k=1)]
        if upper.size == 0:
            return 1.0
        value = float(np.percentile(upper, self.dc_percentile))
        if value <= 0:
            positive = upper[upper > 0]
            value = float(positive.min()) if positive.size else 1.0
        return value

    def _local_density(self, distances: np.ndarray, dc: float) -> np.ndarray:
        if self.kernel == "cutoff":
            rho = np.sum(distances < dc, axis=1).astype(float) - 1.0  # exclude self
        else:
            ratios = distances / dc
            rho = np.sum(np.exp(-(ratios ** 2)), axis=1) - 1.0
        return rho

    @staticmethod
    def _dependent_distances(
        distances: np.ndarray, rho: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(rho)
        order = np.argsort(-rho, kind="stable")
        delta = np.full(n, np.inf)
        dependency = np.full(n, -1, dtype=int)
        max_distance = float(distances.max()) if n > 1 else 1.0
        for rank, index in enumerate(order):
            if rank == 0:
                delta[index] = max_distance
                dependency[index] = -1
                continue
            higher = order[:rank]
            dists = distances[index, higher]
            best = int(np.argmin(dists))
            delta[index] = float(dists[best])
            dependency[index] = int(higher[best])
        return delta, dependency

    def _select_peaks(self, rho: np.ndarray, delta: np.ndarray) -> List[int]:
        eligible = np.flatnonzero(rho > self.xi)
        if eligible.size == 0:
            return []
        if self.tau is not None:
            peaks = [int(i) for i in eligible if delta[i] > self.tau]
            if peaks:
                return sorted(peaks)
            # Fall back to the single global maximum so that at least one
            # cluster exists.
            return [int(eligible[np.argmax(rho[eligible])])]
        gamma = rho * delta
        ranked = sorted((int(i) for i in eligible), key=lambda i: -gamma[i])
        return sorted(ranked[: self.n_clusters])

    # ------------------------------------------------------------------ #
    def fit(self, data: Sequence[Sequence[float]]) -> DensityPeaksResult:
        """Cluster a static dataset and return the full DP result."""
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D array of points, got shape {matrix.shape}")
        n = matrix.shape[0]
        if n == 0:
            empty = np.empty(0)
            return DensityPeaksResult(
                labels=np.empty(0, dtype=int),
                rho=empty,
                delta=empty,
                dependency=np.empty(0, dtype=int),
                peaks=[],
            )
        distances = self._pairwise_distances(matrix)
        dc = self._select_dc(distances)
        rho = self._local_density(distances, dc)
        delta, dependency = self._dependent_distances(distances, rho)
        peaks = self._select_peaks(rho, delta)

        labels = np.full(n, -1, dtype=int)
        for peak in peaks:
            labels[peak] = peak
        # Assign remaining points in decreasing density order so that each
        # point's dependency has already been labelled.
        order = np.argsort(-rho, kind="stable")
        for index in order:
            if labels[index] != -1:
                continue
            if rho[index] <= self.xi:
                continue
            parent = dependency[index]
            if parent >= 0:
                labels[index] = labels[parent]
        return DensityPeaksResult(
            labels=labels, rho=rho, delta=delta, dependency=dependency, peaks=peaks
        )

    def fit_predict(self, data: Sequence[Sequence[float]]) -> np.ndarray:
        """Cluster a static dataset and return only the labels."""
        return self.fit(data).labels
