"""Batch Density Peaks clustering (Rodriguez & Laio, Science 2014).

This is the algorithm EDMStream turns into a streaming method (Section 2 of
the paper).  The batch implementation is used

* as a reference implementation that the DP-Tree based clustering must agree
  with on static data (tested in ``tests/test_dp_consistency.py``),
* for the decision-graph initialisation step (Section 5), and
* as a standalone clusterer for the examples.
"""

from repro.dp.decision_graph import DecisionGraph, decision_graph_from_result
from repro.dp.density_peaks import DensityPeaks, DensityPeaksResult

__all__ = [
    "DensityPeaks",
    "DensityPeaksResult",
    "DecisionGraph",
    "decision_graph_from_result",
]
