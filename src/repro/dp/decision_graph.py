"""The decision graph of Density Peaks clustering (Figure 2b / Figure 15).

A decision graph plots each point (or, for EDMStream, each cluster-cell)
with its local density ρ on the x-axis and its dependent distance δ on the
y-axis.  Cluster centres are the points in the top-right region (large ρ and
large δ).  In the original DP algorithm the user picks them interactively;
EDMStream uses the graph once at initialisation to learn the user's
granularity preference α (Section 5).

This module renders the graph as text (the repository has no plotting
dependency) and provides the peak-selection helpers used by the adaptive-τ
experiment (Figure 15, Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class DecisionGraph:
    """A (ρ, δ) decision graph with simple analysis helpers."""

    rho: List[float]
    delta: List[float]
    ids: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if len(self.rho) != len(self.delta):
            raise ValueError(
                f"rho and delta must have the same length, got {len(self.rho)} and {len(self.delta)}"
            )
        if self.ids is not None and len(self.ids) != len(self.rho):
            raise ValueError("ids must have the same length as rho/delta")

    def __len__(self) -> int:
        return len(self.rho)

    def peaks(self, xi: float, tau: float) -> List[int]:
        """Indices of the points with ρ > ξ and δ > τ (the cluster centres)."""
        return [
            i
            for i in range(len(self.rho))
            if self.rho[i] > xi and self.delta[i] > tau
        ]

    def n_peaks(self, xi: float, tau: float) -> int:
        """Number of cluster centres under the given thresholds."""
        return len(self.peaks(xi, tau))

    def gamma_ranking(self) -> List[int]:
        """Indices sorted by decreasing γ = ρ·δ (the automatic centre ranking)."""
        gamma = [r * d for r, d in zip(self.rho, self.delta)]
        return sorted(range(len(gamma)), key=lambda i: -gamma[i])

    def suggest_tau(self, min_peaks: int = 2) -> float:
        """Pick τ at the largest relative gap of the sorted δ values.

        This is the programmatic stand-in for the interactive selection of
        cluster centres described in the paper's initialisation step.
        """
        from repro.core.adaptive_tau import suggest_initial_tau

        return suggest_initial_tau(self.delta, min_peaks=min_peaks)

    def render(self, width: int = 60, height: int = 20, tau: Optional[float] = None) -> str:
        """Render the decision graph as ASCII art.

        Points are plotted as ``*``; when ``tau`` is given, a horizontal line
        of ``-`` marks the threshold, matching the τ lines of Figure 15.
        """
        if not self.rho:
            return "(empty decision graph)"
        finite_delta = [d for d in self.delta if d != float("inf")]
        max_delta = max(finite_delta) if finite_delta else 1.0
        max_rho = max(self.rho) or 1.0
        grid = [[" " for _ in range(width)] for _ in range(height)]

        def column(value: float, maximum: float) -> int:
            return min(width - 1, int(value / maximum * (width - 1))) if maximum > 0 else 0

        def row(value: float, maximum: float) -> int:
            scaled = min(value, maximum)
            return height - 1 - (
                min(height - 1, int(scaled / maximum * (height - 1))) if maximum > 0 else 0
            )

        if tau is not None and max_delta > 0:
            tau_row = row(tau, max_delta)
            for c in range(width):
                grid[tau_row][c] = "-"
        for r_value, d_value in zip(self.rho, self.delta):
            d_plot = min(d_value, max_delta)
            grid[row(d_plot, max_delta)][column(r_value, max_rho)] = "*"
        lines = ["delta"]
        lines.extend("|" + "".join(r) for r in grid)
        lines.append("+" + "-" * width + "> rho")
        return "\n".join(lines)


def decision_graph_from_result(result) -> DecisionGraph:
    """Build a :class:`DecisionGraph` from a :class:`~repro.dp.density_peaks.DensityPeaksResult`."""
    return DecisionGraph(
        rho=[float(v) for v in result.rho],
        delta=[float(v) for v in result.delta],
        ids=list(range(len(result.rho))),
    )
