"""Distance functions used throughout the library.

The paper uses Euclidean distance for numeric streams (Section 2.1,
footnote 2) and Jaccard distance for the NADS news stream (Section 6.2.2).
This package provides those plus a few additional metrics that are useful
for experimentation, all behind a single :func:`get_metric` factory so that
every clusterer in the library can be parameterised by a metric name.
"""

from repro.distance.metrics import (
    DistanceMetric,
    chebyshev,
    cosine,
    euclidean,
    get_metric,
    manhattan,
    minkowski,
    pairwise_euclidean,
    squared_euclidean,
)
from repro.distance.text import (
    jaccard_distance,
    jaccard_similarity,
    tokenize,
    TokenSetPoint,
)

__all__ = [
    "DistanceMetric",
    "euclidean",
    "pairwise_euclidean",
    "squared_euclidean",
    "manhattan",
    "chebyshev",
    "cosine",
    "minkowski",
    "get_metric",
    "jaccard_distance",
    "jaccard_similarity",
    "tokenize",
    "TokenSetPoint",
]
