"""Text distance support for the news-stream use case.

Section 6.2.2 of the paper clusters the NADS news stream using the Jaccard
distance over short texts.  A news item is represented here as a set of
tokens; :class:`TokenSetPoint` wraps such a set so that it can flow through
the same clusterer code paths as numeric points.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Set, Union

TokenSet = Union[Set[str], FrozenSet[str], "TokenSetPoint"]

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

#: Small English stop-word list; enough to keep headline token sets topical.
STOP_WORDS = frozenset(
    {
        "a", "an", "the", "and", "or", "of", "to", "in", "on", "for", "with",
        "at", "by", "from", "as", "is", "are", "was", "were", "be", "been",
        "it", "its", "this", "that", "their", "his", "her", "will", "would",
        "has", "have", "had", "not", "but", "they", "we", "you", "your",
    }
)


def tokenize(text: str, remove_stop_words: bool = True) -> frozenset[str]:
    """Tokenise a short text into a frozen set of lower-case tokens."""
    tokens = set(_TOKEN_PATTERN.findall(text.lower()))
    if remove_stop_words:
        tokens -= STOP_WORDS
    return frozenset(tokens)


def _as_token_set(value: TokenSet) -> frozenset[str]:
    if isinstance(value, TokenSetPoint):
        return value.tokens
    return frozenset(value)


def jaccard_similarity(a: TokenSet, b: TokenSet) -> float:
    """Jaccard similarity |A ∩ B| / |A ∪ B| between two token sets.

    Two empty sets are defined to have similarity 1.
    """
    set_a = _as_token_set(a)
    set_b = _as_token_set(b)
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    if union == 0:
        return 1.0
    return len(set_a & set_b) / union


def jaccard_distance(a: TokenSet, b: TokenSet) -> float:
    """Jaccard distance 1 - similarity; in [0, 1]."""
    return 1.0 - jaccard_similarity(a, b)


@dataclass(frozen=True)
class TokenSetPoint:
    """A text document represented as a token set.

    ``TokenSetPoint`` instances can be handed to any clusterer configured
    with the ``jaccard`` metric.  Iteration is supported so generic code that
    treats points as iterables of features does not crash, although the
    tokens themselves are not meaningful as numeric coordinates.
    """

    tokens: frozenset[str]
    text: str = field(default="", compare=False)

    @classmethod
    def from_text(cls, text: str) -> "TokenSetPoint":
        """Build a token-set point from raw text."""
        return cls(tokens=tokenize(text), text=text)

    def __iter__(self):
        return iter(sorted(self.tokens))

    def __len__(self) -> int:
        return len(self.tokens)
