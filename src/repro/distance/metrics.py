"""Numeric distance metrics.

All metrics accept either plain Python sequences or ``numpy`` arrays and
return a Python ``float``.  The hot path in EDMStream is the nearest-seed
lookup, which operates on small vectors in a tight loop; we therefore keep
scalar implementations simple and allocation-free rather than vectorising
individual pairwise calls.  Bulk (one-to-many) variants are provided for the
index structures.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Union

import numpy as np

Vector = Union[Sequence[float], np.ndarray]

#: Signature shared by every pairwise metric in this module.
DistanceMetric = Callable[[Vector, Vector], float]


def squared_euclidean(a: Vector, b: Vector) -> float:
    """Squared Euclidean distance between two vectors.

    Cheaper than :func:`euclidean` because it avoids the square root; use it
    when only the ordering of distances matters.
    """
    total = 0.0
    for x, y in zip(a, b):
        diff = x - y
        total += diff * diff
    return total


def euclidean(a: Vector, b: Vector) -> float:
    """Euclidean (L2) distance between two vectors."""
    return math.sqrt(squared_euclidean(a, b))


try:  # pragma: no cover - exercised implicitly by the whole suite
    from scipy.spatial.distance import cdist as _cdist
except ImportError:  # pragma: no cover - scipy is optional
    _cdist = None


def pairwise_euclidean(queries: np.ndarray, seeds: np.ndarray) -> np.ndarray:
    """Exact Euclidean distance matrix between two point sets.

    This is the single bulk kernel shared by the cell stores, the seed
    indexes and the micro-batch ingestion path; routing every bulk Euclidean
    computation through one function guarantees the sequential and batch
    ingestion paths see bit-identical distances.  Two backends, both
    difference-based (no ``x² + y² - 2xy`` cancellation for points far from
    the origin), deterministic, row-consistent (a one-query call returns
    exactly the row a whole-batch call would) and float-symmetric
    (``d(a, b)`` equals ``d(b, a)`` to the last bit, because some distances
    are computed in opposite orientations by the two paths):

    * ``scipy.spatial.distance.cdist`` when scipy is available — a C kernel,
      by far the fastest;
    * otherwise a per-row ``np.einsum`` over the differences.

    When *both* operands arrive as ``float32`` (the arena's reduced-precision
    mode, see :class:`~repro.core.soa.CellArrays`), the einsum path is used
    unconditionally with ``float32`` accumulation: ``cdist`` would silently
    upcast to ``float64``, defeating the memory-bandwidth purpose of the
    mode, and the single-precision result is what the float32 tolerance
    contract in ``tests/test_soa.py`` is written against.
    """
    single = (
        getattr(queries, "dtype", None) == np.float32
        and getattr(seeds, "dtype", None) == np.float32
    )
    if _cdist is not None and not single:
        return _cdist(queries, seeds)
    dtype = np.float32 if single else np.float64
    queries = np.asarray(queries, dtype=dtype)
    seeds = np.asarray(seeds, dtype=dtype)
    out = np.empty((queries.shape[0], seeds.shape[0]), dtype=dtype)
    for row in range(queries.shape[0]):
        diffs = seeds - queries[row]
        out[row] = np.sqrt(np.einsum("ij,ij->i", diffs, diffs, dtype=dtype))
    return out


def manhattan(a: Vector, b: Vector) -> float:
    """Manhattan (L1) distance between two vectors."""
    total = 0.0
    for x, y in zip(a, b):
        total += abs(x - y)
    return total


def chebyshev(a: Vector, b: Vector) -> float:
    """Chebyshev (L-infinity) distance between two vectors."""
    best = 0.0
    for x, y in zip(a, b):
        diff = abs(x - y)
        if diff > best:
            best = diff
    return best


def minkowski(a: Vector, b: Vector, p: float = 3.0) -> float:
    """Minkowski distance of order ``p`` between two vectors."""
    if p <= 0:
        raise ValueError(f"Minkowski order must be positive, got {p}")
    total = 0.0
    for x, y in zip(a, b):
        total += abs(x - y) ** p
    return total ** (1.0 / p)


def cosine(a: Vector, b: Vector) -> float:
    """Cosine distance (1 - cosine similarity) between two vectors.

    The distance between two zero vectors is defined as 0; between a zero
    vector and a non-zero vector it is defined as 1.
    """
    dot = 0.0
    norm_a = 0.0
    norm_b = 0.0
    for x, y in zip(a, b):
        dot += x * y
        norm_a += x * x
        norm_b += y * y
    if norm_a == 0.0 and norm_b == 0.0:
        return 0.0
    if norm_a == 0.0 or norm_b == 0.0:
        return 1.0
    similarity = dot / math.sqrt(norm_a * norm_b)
    # Guard against floating point drift outside [-1, 1].
    similarity = max(-1.0, min(1.0, similarity))
    return 1.0 - similarity


def euclidean_to_many(point: Vector, matrix: np.ndarray) -> np.ndarray:
    """Euclidean distances from ``point`` to every row of ``matrix``."""
    point_arr = np.asarray(point, dtype=float)
    diffs = matrix - point_arr
    return np.sqrt(np.einsum("ij,ij->i", diffs, diffs))


_METRICS: dict[str, DistanceMetric] = {
    "euclidean": euclidean,
    "l2": euclidean,
    "squared_euclidean": squared_euclidean,
    "manhattan": manhattan,
    "l1": manhattan,
    "chebyshev": chebyshev,
    "linf": chebyshev,
    "cosine": cosine,
}


def get_metric(name: str) -> DistanceMetric:
    """Look up a distance metric by name.

    Parameters
    ----------
    name:
        One of ``euclidean``, ``l2``, ``squared_euclidean``, ``manhattan``,
        ``l1``, ``chebyshev``, ``linf``, ``cosine`` or ``jaccard``.

    Raises
    ------
    KeyError
        If the name is unknown.
    """
    key = name.strip().lower()
    if key == "jaccard":
        # Imported lazily to avoid a circular import with repro.distance.text.
        from repro.distance.text import jaccard_distance

        return jaccard_distance
    if key not in _METRICS:
        known = ", ".join(sorted(set(_METRICS) | {"jaccard"}))
        raise KeyError(f"Unknown distance metric {name!r}; known metrics: {known}")
    return _METRICS[key]
