"""The bounded-memory tier: a hard byte cap over the cell state.

EDMStream's cell population grows with the diversity of the stream, so an
unbounded stream eventually exhausts RAM.  :class:`BoundedCellStore` wraps
the structure-of-arrays arena and its two population views
(:class:`~repro.core.cellstore.CellStore`) with a hard ``memory_cap_bytes``
budget enforced by *eviction to sketch*:

* When the arena would have to grow past the cap, the coldest inactive
  cells (LRU by ``last_update``) are evicted: each cell's decayed density
  is folded into a :class:`~repro.sketch.cms.DecayedCountMinSketch` under
  its grid key, the key is recorded in a
  :class:`~repro.sketch.bloom.BloomFilter`, and the cell's slot returns to
  the arena free-list — so the arena recycles slots instead of doubling.
* A re-arriving point that no live cell covers consults the sketch: if
  the bloom filter has seen the point's neighborhood and the count-min
  estimate is at least ``revive_min``, the newly created cell *revives*
  with ``1 + estimate`` as its starting density instead of 1 — a cold
  cluster regaining traffic recovers its density mountain instead of
  rebuilding it from scratch.

Active cells (the DP-Tree) are never evicted: the tier degrades only the
cold tail, so hot-path clustering stays exact.  With no cap configured
the model never constructs this class and behaves bit-identically to the
unbounded build.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.cellstore import CellStore
from repro.core.decay import DecayModel
from repro.core.reservoir import OutlierReservoir
from repro.core.soa import CellArrays
from repro.obs.timing import NULL_TELEMETRY
from repro.sketch.bloom import BloomFilter
from repro.sketch.cms import DecayedCountMinSketch

__all__ = ["BoundedCellStore", "SketchTier", "cell_state_footprint"]

#: Minimum cells evicted per eviction pass (amortises the LRU sort).
_MIN_EVICTION_BATCH = 32


class SketchTier:
    """The approximate cold tier: grid-keyed CMS counters plus membership.

    Parameters
    ----------
    decay:
        Decay model shared with the live cells, so sketched densities age
        at the same rate as exact ones.
    radius:
        Cluster-cell radius ``r``.  Grid keys quantise seed coordinates by
        ``2r`` (the cell diameter), so a point and the seed of the cell
        that would have absorbed it usually share a key.
    cms_width, cms_depth:
        Count-min sketch geometry.
    bloom_capacity, bloom_error_rate:
        Membership-summary sizing.
    revive_min:
        Smallest estimate worth reviving with; below it the sketch is
        treated as empty for the key (decayed-out residue, not a cluster).
    """

    def __init__(
        self,
        decay: DecayModel,
        radius: float,
        cms_width: int = 4096,
        cms_depth: int = 4,
        bloom_capacity: int = 100_000,
        bloom_error_rate: float = 0.01,
        revive_min: float = 0.05,
        seed: int = 0,
    ) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.decay = decay
        self.box = 2.0 * float(radius)
        self.revive_min = float(revive_min)
        self.cms = DecayedCountMinSketch(
            width=cms_width, depth=cms_depth, decay=decay, seed=seed
        )
        self.bloom = BloomFilter(
            capacity=bloom_capacity, error_rate=bloom_error_rate, seed=seed + 1
        )
        #: Cells folded into the sketch (lifetime).
        self.evictions = 0
        #: Total density mass folded in (lifetime, at fold time).
        self.folded_density = 0.0
        #: Estimates handed back to revived cells (lifetime).
        self.revivals = 0
        #: Total density mass handed back to revived cells.
        self.revived_density = 0.0

    @classmethod
    def auto_sized(
        cls,
        decay: DecayModel,
        radius: float,
        memory_cap_bytes: int,
        cms_width: int = 4096,
        cms_depth: int = 4,
        bloom_capacity: int = 100_000,
        bloom_error_rate: float = 0.01,
        revive_min: float = 0.05,
        seed: int = 0,
    ) -> "SketchTier":
        """Build a tier whose fixed storage fits inside a fraction of the cap.

        The sketch counts toward the budget it defends, so its geometry is
        shrunk (powers of two, never grown) until the CMS grids fit in
        about a twelfth of ``memory_cap_bytes`` and the bloom filter in
        about a twenty-fourth; the passed values act as upper bounds.
        Floors of 64 columns / 256 keys keep degenerate caps usable —
        the :class:`BoundedCellStore` constructor still rejects caps the
        floored tier cannot fit under.
        """
        import math

        cms_budget = max(1, memory_cap_bytes // 12)
        width = int(cms_width)
        # Two float64 grids of (depth, width): 16 bytes per counter.
        while width > 64 and cms_depth * width * 16 > cms_budget:
            width //= 2
        bloom_budget = max(1, memory_cap_bytes // 24)
        capacity = int(bloom_capacity)
        bits_per_key = -math.log(bloom_error_rate) / math.log(2) ** 2
        while capacity > 256 and capacity * bits_per_key / 8 > bloom_budget:
            capacity //= 2
        return cls(
            decay=decay,
            radius=radius,
            cms_width=width,
            cms_depth=cms_depth,
            bloom_capacity=capacity,
            bloom_error_rate=bloom_error_rate,
            revive_min=revive_min,
            seed=seed,
        )

    # ------------------------------------------------------------------ #
    def key_of(self, seed: Any) -> Tuple[int, ...]:
        """Grid key of a seed/point: coordinates quantised by ``2r``."""
        return tuple(int(np.floor(float(v) / self.box)) for v in seed)

    def evict(self, seed: Any, density: float, now: float) -> None:
        """Fold a cold cell's decayed density into the sketch tier."""
        key = self.key_of(seed)
        self.cms.fold(key, density, now)
        self.bloom.add(key)
        self.evictions += 1
        self.folded_density += density

    def estimate(self, point: Any, now: float) -> float:
        """Sketch-estimated density of the point's neighborhood at ``now``.

        Zero unless the bloom filter has seen the neighborhood (so CMS
        collisions cannot fabricate density for novel regions) and the
        aged estimate is at least ``revive_min``.
        """
        key = self.key_of(point)
        if key not in self.bloom:
            return 0.0
        estimate = self.cms.estimate(key, now)
        return estimate if estimate >= self.revive_min else 0.0

    def record_revival(self, density: float) -> None:
        """Count one revival that started with ``density`` from the sketch."""
        self.revivals += 1
        self.revived_density += density

    def nbytes(self) -> int:
        """Bytes held by the sketch structures (fixed at construction)."""
        return self.cms.nbytes() + self.bloom.nbytes()

    def stats(self) -> Dict[str, Any]:
        """Counters for snapshots and benchmark artifacts."""
        return {
            "evictions": self.evictions,
            "revivals": self.revivals,
            "folded_density": round(self.folded_density, 3),
            "revived_density": round(self.revived_density, 3),
            "sketch_bytes": self.nbytes(),
            "bloom_fill_ratio": round(self.bloom.fill_ratio(), 6),
        }


class BoundedCellStore:
    """Hard-memory-cap enforcement over one arena and its population views.

    The class does not replace :class:`~repro.core.cellstore.CellStore` —
    it wraps the arena plus both stores and the outlier reservoir, and is
    consulted by the model at the two moments that matter: *before slots
    are claimed* (:meth:`ensure_headroom`, which evicts instead of letting
    the arena double past the cap) and *at maintenance boundaries*
    (:meth:`enforce`, which trims Python-side state back under the cap and
    samples the peak).

    Parameters
    ----------
    arena, active, inactive, reservoir:
        The model's storage: the shared arena, its two population views
        and the outlier reservoir.  Only cells in ``inactive`` (equally:
        in ``reservoir``) are evictable.
    tier:
        The sketch tier evictions fold into.
    memory_cap_bytes:
        The hard budget, compared against :meth:`memory_footprint`.
    """

    def __init__(
        self,
        arena: CellArrays,
        active: CellStore,
        inactive: CellStore,
        reservoir: OutlierReservoir,
        tier: SketchTier,
        memory_cap_bytes: int,
    ) -> None:
        if memory_cap_bytes <= 0:
            raise ValueError(
                f"memory_cap_bytes must be positive, got {memory_cap_bytes}"
            )
        if tier.nbytes() >= memory_cap_bytes:
            raise ValueError(
                f"memory_cap_bytes={memory_cap_bytes} does not even cover the "
                f"sketch tier ({tier.nbytes()} bytes); raise the cap or shrink "
                "the sketch"
            )
        self.arena = arena
        self.active = active
        self.inactive = inactive
        self.reservoir = reservoir
        self.tier = tier
        self.memory_cap_bytes = int(memory_cap_bytes)
        #: Times the cap could not be honoured (nothing left to evict).
        self.cap_overflows = 0
        #: Highest total footprint ever sampled.
        self.peak_bytes = 0
        #: Telemetry facade; the owning model swaps in its own when enabled.
        self.obs = NULL_TELEMETRY

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def memory_footprint(self) -> Dict[str, int]:
        """Byte accounting of the cell state (see :func:`cell_state_footprint`)."""
        return cell_state_footprint(
            self.arena, self.active, self.inactive, sketch_bytes=self.tier.nbytes()
        )

    def note_peak(self) -> int:
        """Sample the current footprint into :attr:`peak_bytes`."""
        total = self.memory_footprint()["total"]
        if total > self.peak_bytes:
            self.peak_bytes = total
        return total

    def stats(self) -> Dict[str, Any]:
        """Tier counters plus cap accounting, for snapshots and benches."""
        footprint = self.memory_footprint()
        return {
            **self.tier.stats(),
            "memory_cap_bytes": self.memory_cap_bytes,
            "cell_state_bytes": footprint["total"],
            "peak_cell_state_bytes": max(self.peak_bytes, footprint["total"]),
            "cap_overflows": self.cap_overflows,
        }

    # ------------------------------------------------------------------ #
    # cap enforcement
    # ------------------------------------------------------------------ #
    def ensure_headroom(self, n_new: int, now: float) -> int:
        """Make room for ``n_new`` allocations without growing past the cap.

        Returns the number of cells evicted.  When the arena would have to
        double past the cap — counting the side-state growth of the
        incoming allocations, so a doubling cannot squeak through on the
        column bytes alone — the deficit is covered by evicting the
        coldest inactive cells to the sketch; if the evictable population
        cannot cover it, the growth happens anyway and the resulting
        breach is counted by :meth:`enforce` — the cap is a target the
        tier defends, never a reason to drop data on the floor.  Ends
        with an :meth:`enforce` sweep, so the cap is checked (and the
        peak sampled) at every allocation wave, not only at maintenance
        boundaries.
        """
        arena = self.arena
        reserve = min(n_new * self._per_cell_side_bytes(), self.memory_cap_bytes // 8)
        available = arena.n_free + (arena.capacity - arena.high_water)
        if available >= n_new:
            return self.enforce(now, reserve_bytes=reserve)
        needed = n_new - available
        capacity = max(1, arena.capacity)
        new_capacity = capacity
        while new_capacity - capacity < needed:
            new_capacity *= 2
        projected = self.memory_footprint()["total"] + int(
            arena.nbytes() * (new_capacity / capacity - 1.0)
        )
        margin = max(1024, self.memory_cap_bytes // 128)
        if projected + reserve + margin <= self.memory_cap_bytes:
            return self.enforce(now, reserve_bytes=reserve)
        evicted = self.evict_coldest(max(needed, _MIN_EVICTION_BATCH), now)
        return evicted + self.enforce(now, reserve_bytes=reserve)

    def enforce(self, now: float, reserve_bytes: int = 0) -> int:
        """Trim live state back under the cap; samples :attr:`peak_bytes`.

        Eviction cannot shrink the arena's column storage (capacity never
        shrinks), but it does return the Python-side per-cell state of the
        cold tail, and it keeps the free-list stocked so the next
        allocation wave needs no growth.  ``reserve_bytes`` lowers the
        eviction trigger below the cap by the side-state growth the caller
        is about to commit, so an allocation wave lands under the cap
        instead of transiently crossing it before the next sweep.
        """
        total = self.note_peak()
        margin = max(1024, self.memory_cap_bytes // 128)
        threshold = self.memory_cap_bytes - int(reserve_bytes) - margin
        if total <= threshold:
            return 0
        floor = self.arena.nbytes() + self.tier.nbytes()
        evicted = 0
        if total > max(threshold, floor):
            per_cell = self._per_cell_side_bytes()
            overshoot = total - max(threshold, floor)
            target = max(_MIN_EVICTION_BATCH, int(np.ceil(overshoot / per_cell)))
            evicted = self.evict_coldest(target, now)
            total = self.note_peak()
        if total > self.memory_cap_bytes:
            # Still over the cap after the sweep: the irreducible storage
            # (arena columns + sketch + hot cells) alone exceeds it.
            self.cap_overflows += 1
        return evicted

    def _per_cell_side_bytes(self) -> int:
        """Estimated Python-side bytes one live cell holds."""
        return max(1, _side_state_bytes(self.arena) // max(1, len(self.arena)))

    def evict_coldest(self, n: int, now: float) -> int:
        """Evict up to ``n`` of the coldest inactive cells to the sketch.

        Coldness is LRU by the ``last_update`` column.  For each victim the
        decayed density is folded into the CMS under the seed's grid key,
        the key is recorded in the bloom filter, and the slot is released
        to the arena free-list.  Returns the number actually evicted.
        """
        inactive = self.inactive
        n = min(int(n), len(inactive))
        if n <= 0:
            return 0
        with self.obs.phase("sketch_evict"):
            slots = inactive.slots()
            last_update = self.arena.last_update[slots]
            order = np.argsort(last_update, kind="stable")[:n]
            ids = inactive.ids_array()[order]
            decay_rate = self.tier.decay.rate
            density = self.arena.density
            for cell_id in ids.tolist():
                slot = self.arena.slot_of(cell_id)
                elapsed = max(0.0, now - float(self.arena.last_update[slot]))
                decayed = float(density[slot]) * decay_rate**elapsed
                self.tier.evict(self.arena.seed_of(slot), decayed, now)
                self.reservoir.pop(cell_id)
                inactive.remove(cell_id)
                self.arena.release(cell_id)
        if self.obs.enabled:
            self.obs.counter("cells_evicted_total").inc(int(ids.size))
            self.obs.record_event(
                "cell_evicted", time=now, count=int(ids.size), kind_detail="sweep"
            )
        return int(ids.size)

    # ------------------------------------------------------------------ #
    # revival
    # ------------------------------------------------------------------ #
    def revival_density(self, point: Any, now: float) -> float:
        """Extra starting density for a new cell seeded at ``point``.

        The sketch tier's bloom-gated estimate; zero for genuinely novel
        neighborhoods.  The caller adds it on top of the new cell's own
        first point and reports the revival back via the tier counters.
        """
        with self.obs.phase("sketch_revive"):
            estimate = self.tier.estimate(point, now)
        if estimate > 0.0:
            self.tier.record_revival(estimate)
            if self.obs.enabled:
                self.obs.counter("cells_revived_total").inc()
                self.obs.record_event("cell_revived", time=now, density=estimate)
        return estimate


def cell_state_footprint(
    arena: CellArrays,
    active: CellStore,
    inactive: CellStore,
    sketch_bytes: int = 0,
) -> Dict[str, int]:
    """Byte accounting of one model's cell state, by component.

    ``arena`` is capacity-based (the columns are allocated storage whether
    slots are live or free); ``side_state`` estimates the Python-side
    per-cell objects (seed tuples, id maps, views) from live-cell counts;
    ``stores`` covers the population views' position bookkeeping;
    ``sketch`` is the fixed-size approximate tier (0 in exact mode).
    """
    side = _side_state_bytes(arena)
    stores = active.memory_footprint() + inactive.memory_footprint()
    total = arena.nbytes() + side + stores + sketch_bytes
    return {
        "arena": arena.nbytes(),
        "side_state": side,
        "stores": stores,
        "sketch": int(sketch_bytes),
        "total": total,
    }


def _side_state_bytes(arena: CellArrays) -> int:
    """Estimated Python-side bytes the arena holds per live cell.

    Seed objects dominate (a d-tuple of floats is ~``56 + 32·d`` bytes);
    the id→slot map, view cache and label votes are estimated from their
    container sizes.  An estimate is all the cap needs — the goal is to
    scale eviction pressure with the live population, not to audit the
    allocator.
    """
    live = len(arena)
    if live == 0:
        return 0
    sample = next(iter(arena._seed_obj.values()), None)
    if isinstance(sample, tuple):
        seed_bytes = sys.getsizeof(sample) + 24 * len(sample)
    else:
        seed_bytes = sys.getsizeof(sample) if sample is not None else 64
    per_cell = seed_bytes + 200  # dict entries (slot_of, seed_obj) + view share
    return live * per_cell
