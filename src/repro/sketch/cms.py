"""Conservative count-min sketch with decay folded in by lazy aging.

The bounded-memory tier (:mod:`repro.sketch.bounded`) degrades cold
cluster-cells to *approximate* density counters instead of deleting them.
:class:`DecayedCountMinSketch` is that counter store: a fixed ``(depth,
width)`` grid of float counters where every counter carries the timestamp
of its last write, so the exponential decay of Equation 3 is applied
lazily on read — exactly the scheme the live cells use for their density
column, transplanted onto shared counters.

Two write operations are provided:

* :meth:`fold` — the eviction path.  A cold cell's *absolute* decayed
  density is folded in with a conservative ``max``: each of the ``depth``
  counters becomes ``max(aged counter, value)``.  ``max`` (rather than
  ``+=``) is what makes evict → revive → evict cycles idempotent: a cell
  revived from the sketch already carries the sketch's contribution in its
  exact density, so folding it back must not double-count.
* :meth:`add` — a plain conservative-update increment (Estan & Varghese),
  used where the sketch is fed per-event counts rather than absolute
  densities.

:meth:`estimate` answers with the row-wise minimum of the aged counters —
the classic CMS guarantee (never an under-estimate of what was folded,
over-estimates only on hash collisions) carried through decay, because
aging is monotone and applied identically to every row.
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np

from repro.core.decay import DecayModel

__all__ = ["DecayedCountMinSketch"]

#: SplitMix64 increment; the de-facto standard 64-bit mixing constant.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def _mix(value: int) -> int:
    """SplitMix64 finalizer: avalanche a 64-bit integer."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK
    return value ^ (value >> 31)


def stable_key_hash(key: Hashable) -> int:
    """A process-stable 64-bit hash of a grid key.

    Grid keys are tuples of integers (quantised seed coordinates), which
    python hashes deterministically — but the tuple hash is weak for
    regular lattices, so every component is passed through a SplitMix64
    finalizer and chain-mixed.  Integer components feed their value in
    directly rather than through ``hash()``, whose CPython quirk
    ``hash(-1) == -2`` would alias adjacent grid lines.  Non-tuple keys
    fall back to ``hash()``.
    """
    if isinstance(key, tuple):
        state = _GOLDEN
        for part in key:
            component = part if isinstance(part, int) else hash(part)
            state = _mix((state + (component & _MASK) + _GOLDEN) & _MASK)
        return state
    return _mix(hash(key) & _MASK)


class DecayedCountMinSketch:
    """A count-min sketch whose counters age by exponential decay.

    Parameters
    ----------
    width:
        Number of counters per row.  Collision error scales with the
        total mass divided by ``width``.
    depth:
        Number of independent rows (hash functions); the estimate is the
        row-wise minimum.
    decay:
        The :class:`~repro.core.decay.DecayModel` shared with the live
        cells, so sketched densities age at exactly the rate exact
        densities do.
    seed:
        Seed of the per-row hash multipliers.
    """

    def __init__(
        self, width: int = 4096, depth: int = 4, decay: DecayModel | None = None,
        seed: int = 0,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.decay = decay if decay is not None else DecayModel()
        rng = np.random.default_rng(seed)
        # Odd multipliers + offsets: depth pairwise-independent row hashes.
        self._mul = (rng.integers(1, 1 << 62, size=depth, dtype=np.uint64) << 1) | 1
        self._add = rng.integers(0, 1 << 63, size=depth, dtype=np.uint64)
        self._rows = np.arange(depth)
        self.counters = np.zeros((depth, width), dtype=np.float64)
        self.timestamps = np.zeros((depth, width), dtype=np.float64)
        #: Total number of fold/add writes (statistics only).
        self.n_writes = 0

    # ------------------------------------------------------------------ #
    def _columns(self, key: Hashable) -> np.ndarray:
        """Per-row counter columns for a key."""
        base = np.uint64(stable_key_hash(key))
        with np.errstate(over="ignore"):
            mixed = base * self._mul + self._add
        return ((mixed >> np.uint64(33)) % np.uint64(self.width)).astype(np.int64)

    def _aged(self, columns: np.ndarray, now: float) -> np.ndarray:
        """The key's counters decayed from their write times to ``now``."""
        values = self.counters[self._rows, columns]
        elapsed = np.maximum(0.0, now - self.timestamps[self._rows, columns])
        return values * self.decay.rate**elapsed

    # ------------------------------------------------------------------ #
    def fold(self, key: Hashable, value: float, now: float) -> None:
        """Fold an absolute density into the key's counters (``max`` merge).

        Each counter is first aged to ``now``, then raised to ``value`` if
        it lies below it, and re-stamped.  Folding the same (key, value)
        twice is a no-op; folding a revived-and-regrown density replaces
        the stale counter instead of accumulating on top of it.
        """
        if value < 0.0:
            raise ValueError(f"density must be non-negative, got {value}")
        columns = self._columns(key)
        aged = np.maximum(self._aged(columns, now), value)
        self.counters[self._rows, columns] = aged
        self.timestamps[self._rows, columns] = now
        self.n_writes += 1

    def add(self, key: Hashable, amount: float, now: float) -> None:
        """Conservative-update increment: raise counters to ``estimate + amount``."""
        if amount < 0.0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        columns = self._columns(key)
        aged = self._aged(columns, now)
        target = float(aged.min()) + amount
        self.counters[self._rows, columns] = np.maximum(aged, target)
        self.timestamps[self._rows, columns] = now
        self.n_writes += 1

    def estimate(self, key: Hashable, now: float) -> float:
        """The key's density estimate at ``now`` (row-wise aged minimum).

        Never under-estimates the decayed value of what was folded for the
        key; over-estimates only when all ``depth`` rows collide with
        heavier keys.
        """
        return float(self._aged(self._columns(key), now).min())

    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        """Bytes held by the counter and timestamp grids."""
        return int(
            self.counters.nbytes
            + self.timestamps.nbytes
            + self._mul.nbytes
            + self._add.nbytes
        )

    def load(self, now: float, floor: float = 1e-9) -> float:
        """Fraction of first-row counters still carrying mass above ``floor``."""
        elapsed = np.maximum(0.0, now - self.timestamps[0])
        alive = self.counters[0] * self.decay.rate**elapsed > floor
        return float(np.count_nonzero(alive)) / self.width

    def summary(self) -> Tuple[int, int, int]:
        """``(depth, width, n_writes)`` for reports."""
        return self.depth, self.width, self.n_writes
