"""Bloom-filter membership summary for grid-cell neighborhoods.

The bounded-memory tier needs to answer one question about a point that no
live cell covers: *was there ever a cluster-cell in this neighborhood?*
Exact answers would require remembering every evicted seed — the memory
the tier exists to reclaim — so the question is answered approximately by
a bloom filter over grid keys (quantised seed coordinates).  The filter
gates revival: a count-min estimate is only trusted for keys the filter
has seen, so hash collisions inside the sketch can never fabricate
density for a genuinely novel region (no false negatives; false positives
at the configured rate merely inherit the sketch's own collision error).
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from repro.sketch.cms import stable_key_hash

__all__ = ["BloomFilter"]


class BloomFilter:
    """A fixed-size bloom filter over hashable keys.

    Parameters
    ----------
    capacity:
        Number of distinct keys the filter is sized for.
    error_rate:
        Target false-positive probability at ``capacity`` insertions.
    seed:
        Seed of the per-probe hash parameters.
    """

    def __init__(
        self, capacity: int = 100_000, error_rate: float = 0.01, seed: int = 0
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < error_rate < 1.0:
            raise ValueError(f"error_rate must be in (0, 1), got {error_rate}")
        self.capacity = int(capacity)
        self.error_rate = float(error_rate)
        # Classic sizing: m = -n ln p / (ln 2)^2 bits, k = (m/n) ln 2 probes.
        n_bits = max(8, int(math.ceil(-capacity * math.log(error_rate) / math.log(2) ** 2)))
        self.n_bits = n_bits
        self.n_hashes = max(1, int(round(n_bits / capacity * math.log(2))))
        rng = np.random.default_rng(seed)
        self._mul = (rng.integers(1, 1 << 62, size=self.n_hashes, dtype=np.uint64) << 1) | 1
        self._add = rng.integers(0, 1 << 63, size=self.n_hashes, dtype=np.uint64)
        self._bits = np.zeros((n_bits + 7) // 8, dtype=np.uint8)
        #: Number of ``add`` calls for keys not already present (approximate
        #: distinct-insert counter; exact while the filter is sparse).
        self.n_added = 0

    # ------------------------------------------------------------------ #
    def _positions(self, key: Hashable) -> np.ndarray:
        base = np.uint64(stable_key_hash(key))
        with np.errstate(over="ignore"):
            mixed = base * self._mul + self._add
        return ((mixed >> np.uint64(33)) % np.uint64(self.n_bits)).astype(np.int64)

    def add(self, key: Hashable) -> None:
        """Insert a key (idempotent)."""
        positions = self._positions(key)
        bytes_, offsets = positions >> 3, positions & 7
        masks = (1 << offsets).astype(np.uint8)
        if np.all(self._bits[bytes_] & masks):
            return
        # ``bitwise_or.at``: plain fancy ``|=`` would drop all but one probe
        # landing in the same byte (duplicate scatter indices).
        np.bitwise_or.at(self._bits, bytes_, masks)
        self.n_added += 1

    def __contains__(self, key: Hashable) -> bool:
        """Whether the key was (probably) inserted; never a false negative."""
        positions = self._positions(key)
        bits = self._bits[positions >> 3] & (1 << (positions & 7)).astype(np.uint8)
        return bool(np.all(bits != 0))

    # ------------------------------------------------------------------ #
    def fill_ratio(self) -> float:
        """Fraction of bits set (drives the live false-positive rate)."""
        return float(np.unpackbits(self._bits).sum()) / float(self.n_bits)

    def current_error_rate(self) -> float:
        """False-positive probability implied by the current fill ratio."""
        return self.fill_ratio() ** self.n_hashes

    def nbytes(self) -> int:
        """Bytes held by the bit array and hash parameters."""
        return int(self._bits.nbytes + self._mul.nbytes + self._add.nbytes)
