"""Probabilistic summaries backing the bounded-memory tier.

The package keeps EDMStream's cell state under a hard byte budget by
degrading cold cells to approximate counters instead of deleting them:

* :class:`~repro.sketch.cms.DecayedCountMinSketch` — conservative
  count-min counters with the stream's exponential decay applied lazily
  via per-counter timestamps.
* :class:`~repro.sketch.bloom.BloomFilter` — "have we ever seen this
  neighborhood" membership summary gating revival.
* :class:`~repro.sketch.bounded.SketchTier` /
  :class:`~repro.sketch.bounded.BoundedCellStore` — grid-keyed eviction
  of the coldest inactive cells into the sketch and revival of
  re-arriving neighborhoods, enforcing ``EDMStream(memory_cap_bytes=…)``.
"""

from repro.sketch.bloom import BloomFilter
from repro.sketch.bounded import BoundedCellStore, SketchTier, cell_state_footprint
from repro.sketch.cms import DecayedCountMinSketch, stable_key_hash

__all__ = [
    "BloomFilter",
    "BoundedCellStore",
    "DecayedCountMinSketch",
    "SketchTier",
    "cell_state_footprint",
    "stable_key_hash",
]
