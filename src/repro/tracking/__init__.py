"""Offline cluster-transition tracking baselines.

EDMStream tracks cluster evolution *online*, as a by-product of maintaining
the DP-Tree.  The solutions the paper positions itself against (Sections 1
and 7) instead run a separate *offline* transition-detection procedure over
successive clusterings:

* :mod:`repro.tracking.monic` — MONIC (Spiliopoulou et al., KDD 2006):
  weighted-overlap matching with external transitions (survive, split,
  absorb, disappear, emerge) and internal transitions (size, compactness,
  location) for surviving clusters.
* :mod:`repro.tracking.mec` — MEC (Oliveira & Gama, IDA 2012): a bipartite
  transition graph built from conditional probabilities between snapshots.
* :mod:`repro.tracking.adapter` — glue that records object-level cluster
  snapshots from any :class:`~repro.api.StreamClusterer` (via
  ``predict_many`` over a sliding window of recent points) so the offline
  trackers can be applied to algorithms without native evolution tracking,
  and helpers to compare their event logs with EDMStream's
  :class:`~repro.core.evolution.EvolutionTracker`.

Naming note: :class:`repro.tracking.ClusterSnapshot` is MONIC/MEC's
*object-level* snapshot (which recent points sit in which cluster, with
freshness weights) and predates the serving API; it is unrelated to the
immutable *serving* view :class:`repro.api.ClusterSnapshot` that
``request_clustering()`` returns.
"""

from repro.tracking.transitions import (
    ClusterSnapshot,
    ExternalTransition,
    InternalTransition,
    TransitionType,
    WeightedCluster,
)
from repro.tracking.monic import MonicTracker
from repro.tracking.mec import MECTracker
from repro.tracking.adapter import (
    SnapshotRecorder,
    compare_event_logs,
    events_from_external_transitions,
)

__all__ = [
    "WeightedCluster",
    "ClusterSnapshot",
    "TransitionType",
    "ExternalTransition",
    "InternalTransition",
    "MonicTracker",
    "MECTracker",
    "SnapshotRecorder",
    "events_from_external_transitions",
    "compare_event_logs",
]
