"""MONIC — modelling and monitoring cluster transitions (Spiliopoulou et al. 2006).

MONIC is the offline transition-detection procedure the paper cites as the
way existing stream clusterers have to bolt evolution tracking on top of
their (re-)clusterings.  It compares two clusterings ζ₁ (at t₁) and ζ₂
(at t₂) through the *weighted overlap*

    overlap(X, Y) = Σ_{x ∈ X ∩ Y} age(x, t₂) / Σ_{x ∈ X} age(x, t₂)

and derives, per old cluster X:

* **survival**   X → Y  when Y is the unique match with overlap ≥ τ_match,
* **split**      X → {Y₁ … Yₖ} when several clusters each cover ≥ τ_split of
  X and together cover ≥ τ_match,
* **absorption** {X₁ … Xₖ} → Y when Y is the match of several old clusters,
* **disappearance** when no (combination of) new clusters covers X,

plus **emergence** for new clusters that match no old cluster, and internal
transitions (size / compactness / location) for survived clusters.

The implementation is snapshot-based and algorithm-agnostic: feed it
:class:`~repro.tracking.transitions.ClusterSnapshot` objects (e.g. produced
by :class:`~repro.tracking.adapter.SnapshotRecorder`) and read the
transition log back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.tracking.transitions import (
    ClusterSnapshot,
    ExternalTransition,
    InternalTransition,
    TransitionType,
    WeightedCluster,
    transition_counts,
)


@dataclass
class MonicConfig:
    """Thresholds of the MONIC transition model.

    Parameters
    ----------
    match_threshold:
        τ_match — minimum weighted overlap for an old cluster to be matched
        (survive into / be absorbed by) a new cluster, and for a set of
        splinters to jointly count as a split.
    split_threshold:
        τ_split — minimum weighted overlap for a new cluster to count as one
        of the splinters of an old cluster (τ_split ≤ τ_match).
    size_epsilon:
        Relative size change below which a survived cluster is *not*
        reported as grown/shrunk.
    compactness_epsilon:
        Relative dispersion change below which no compactness transition is
        reported.
    shift_epsilon:
        Absolute centroid displacement below which no location transition is
        reported (same units as the data).
    """

    match_threshold: float = 0.5
    split_threshold: float = 0.25
    size_epsilon: float = 0.1
    compactness_epsilon: float = 0.1
    shift_epsilon: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.match_threshold <= 1.0:
            raise ValueError(f"match_threshold must be in (0, 1], got {self.match_threshold}")
        if not 0.0 < self.split_threshold <= self.match_threshold:
            raise ValueError(
                "split_threshold must be in (0, match_threshold], got "
                f"{self.split_threshold} (match_threshold={self.match_threshold})"
            )
        if self.size_epsilon < 0 or self.compactness_epsilon < 0 or self.shift_epsilon < 0:
            raise ValueError("epsilons must be non-negative")


class MonicTracker:
    """Detects MONIC external and internal transitions between snapshots."""

    def __init__(self, config: Optional[MonicConfig] = None, **overrides) -> None:
        if config is None:
            config = MonicConfig(**overrides)
        elif overrides:
            config = MonicConfig(**{**config.__dict__, **overrides})
        self.config = config
        self.external_transitions: List[ExternalTransition] = []
        self.internal_transitions: List[InternalTransition] = []
        self._previous: Optional[ClusterSnapshot] = None

    # ------------------------------------------------------------------ #
    # observation API
    # ------------------------------------------------------------------ #
    def observe(self, snapshot: ClusterSnapshot) -> List[ExternalTransition]:
        """Record a snapshot and return the external transitions it triggered."""
        if self._previous is None:
            transitions = [
                ExternalTransition(
                    transition_type=TransitionType.EMERGE,
                    time=snapshot.time,
                    new_clusters=(cluster.cluster_id,),
                    overlap=0.0,
                    description="initial cluster",
                )
                for cluster in snapshot
            ]
        else:
            transitions = self._compare(self._previous, snapshot)
        self.external_transitions.extend(transitions)
        self._previous = snapshot
        return transitions

    def compare(
        self, old: ClusterSnapshot, new: ClusterSnapshot
    ) -> List[ExternalTransition]:
        """Stateless comparison of two snapshots (does not touch the log)."""
        return self._compare(old, new)

    # ------------------------------------------------------------------ #
    # MONIC core
    # ------------------------------------------------------------------ #
    @staticmethod
    def overlap(old: WeightedCluster, new: WeightedCluster) -> float:
        """Weighted overlap of ``old`` with ``new`` (normalised by old's weight)."""
        total = old.total_weight
        if total <= 0:
            return 0.0
        return old.overlap_weight(new) / total

    def _compare(
        self, old: ClusterSnapshot, new: ClusterSnapshot
    ) -> List[ExternalTransition]:
        cfg = self.config
        time = new.time
        transitions: List[ExternalTransition] = []

        overlaps: Dict[Hashable, Dict[Hashable, float]] = {}
        for old_cluster in old:
            overlaps[old_cluster.cluster_id] = {
                new_cluster.cluster_id: self.overlap(old_cluster, new_cluster)
                for new_cluster in new
            }

        #: old cluster id -> new cluster id it survived into (if any)
        survived_into: Dict[Hashable, Hashable] = {}
        #: new cluster id -> old clusters matched to it
        matched_by: Dict[Hashable, List[Hashable]] = {c.cluster_id: [] for c in new}
        split_old: set = set()

        for old_cluster in old:
            row = overlaps[old_cluster.cluster_id]
            if not row:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.DISAPPEAR,
                        time=time,
                        old_clusters=(old_cluster.cluster_id,),
                        description=f"cluster {old_cluster.cluster_id} disappeared",
                    )
                )
                continue
            best_new, best_overlap = max(row.items(), key=lambda kv: kv[1])
            # Strictly greater than τ_match: an exactly even split (e.g. 50/50
            # with the default τ_match = 0.5) must be reported as a split, not
            # as a survival into an arbitrary half.
            if best_overlap > cfg.match_threshold:
                survived_into[old_cluster.cluster_id] = best_new
                matched_by[best_new].append(old_cluster.cluster_id)
                continue

            # No single match: check for a split among the significant covers.
            splinters = [
                new_id for new_id, value in row.items() if value >= cfg.split_threshold
            ]
            joint = sum(row[new_id] for new_id in splinters)
            if len(splinters) >= 2 and joint >= cfg.match_threshold:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.SPLIT,
                        time=time,
                        old_clusters=(old_cluster.cluster_id,),
                        new_clusters=tuple(sorted(splinters, key=str)),
                        overlap=joint,
                        description=(
                            f"cluster {old_cluster.cluster_id} split into "
                            f"{len(splinters)} clusters"
                        ),
                    )
                )
                split_old.add(old_cluster.cluster_id)
                for new_id in splinters:
                    matched_by[new_id].append(old_cluster.cluster_id)
            else:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.DISAPPEAR,
                        time=time,
                        old_clusters=(old_cluster.cluster_id,),
                        overlap=best_overlap,
                        description=f"cluster {old_cluster.cluster_id} disappeared",
                    )
                )

        # Absorptions: several old clusters survived into the same new cluster.
        absorbed_targets = set()
        for new_id, contributors in matched_by.items():
            survivors = [c for c in contributors if survived_into.get(c) == new_id]
            if len(survivors) >= 2:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.ABSORB,
                        time=time,
                        old_clusters=tuple(sorted(survivors, key=str)),
                        new_clusters=(new_id,),
                        overlap=min(
                            overlaps[old_id][new_id] for old_id in survivors
                        ),
                        description=f"{len(survivors)} clusters absorbed into {new_id}",
                    )
                )
                absorbed_targets.add(new_id)

        # Pure survivals (single old cluster matched, not part of an absorption).
        for old_id, new_id in survived_into.items():
            if new_id in absorbed_targets:
                continue
            if len([c for c in matched_by[new_id] if survived_into.get(c) == new_id]) == 1:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.SURVIVE,
                        time=time,
                        old_clusters=(old_id,),
                        new_clusters=(new_id,),
                        overlap=overlaps[old_id][new_id],
                        description=f"cluster {old_id} survived as {new_id}",
                    )
                )
                self.internal_transitions.extend(
                    self._internal(old.cluster(old_id), new.cluster(new_id), time)
                )

        # Emergences: new clusters that matched no old cluster.
        for new_cluster in new:
            if not matched_by[new_cluster.cluster_id]:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.EMERGE,
                        time=time,
                        new_clusters=(new_cluster.cluster_id,),
                        description=f"cluster {new_cluster.cluster_id} emerged",
                    )
                )
        return transitions

    # ------------------------------------------------------------------ #
    # internal transitions
    # ------------------------------------------------------------------ #
    def _internal(
        self, old: WeightedCluster, new: WeightedCluster, time: float
    ) -> List[InternalTransition]:
        cfg = self.config
        transitions: List[InternalTransition] = []

        old_size = old.total_weight
        new_size = new.total_weight
        if old_size > 0:
            relative = (new_size - old_size) / old_size
            if relative > cfg.size_epsilon:
                transitions.append(
                    InternalTransition(
                        transition_type=TransitionType.GROW,
                        time=time,
                        old_cluster=old.cluster_id,
                        new_cluster=new.cluster_id,
                        magnitude=relative,
                        description="cluster grew",
                    )
                )
            elif relative < -cfg.size_epsilon:
                transitions.append(
                    InternalTransition(
                        transition_type=TransitionType.SHRINK,
                        time=time,
                        old_cluster=old.cluster_id,
                        new_cluster=new.cluster_id,
                        magnitude=relative,
                        description="cluster shrank",
                    )
                )

        if old.dispersion is not None and new.dispersion is not None and old.dispersion > 0:
            relative = (new.dispersion - old.dispersion) / old.dispersion
            if relative < -cfg.compactness_epsilon:
                transitions.append(
                    InternalTransition(
                        transition_type=TransitionType.MORE_COMPACT,
                        time=time,
                        old_cluster=old.cluster_id,
                        new_cluster=new.cluster_id,
                        magnitude=relative,
                        description="cluster became more compact",
                    )
                )
            elif relative > cfg.compactness_epsilon:
                transitions.append(
                    InternalTransition(
                        transition_type=TransitionType.MORE_DIFFUSE,
                        time=time,
                        old_cluster=old.cluster_id,
                        new_cluster=new.cluster_id,
                        magnitude=relative,
                        description="cluster became more diffuse",
                    )
                )

        if old.centroid is not None and new.centroid is not None:
            shift = sum((a - b) ** 2 for a, b in zip(old.centroid, new.centroid)) ** 0.5
            if shift > cfg.shift_epsilon:
                transitions.append(
                    InternalTransition(
                        transition_type=TransitionType.SHIFT,
                        time=time,
                        old_cluster=old.cluster_id,
                        new_cluster=new.cluster_id,
                        magnitude=shift,
                        description="cluster centroid shifted",
                    )
                )
        return transitions

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def counts(self) -> Dict[str, int]:
        """Number of recorded external transitions per type."""
        return transition_counts(self.external_transitions)

    def transitions_of_type(self, transition_type: TransitionType) -> List[ExternalTransition]:
        """External transitions of one type, in time order."""
        return [
            t for t in self.external_transitions if t.transition_type == transition_type
        ]
