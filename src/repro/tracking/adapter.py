"""Glue between stream clusterers and the offline transition trackers.

The offline trackers (MONIC, MEC) need object-level snapshots: which recent
stream points belong to which macro cluster at each observation time.  None
of the two-phase baselines expose that directly, but all of them (and
EDMStream) implement ``predict_one``; :class:`SnapshotRecorder` therefore
keeps a sliding window of recent points and, at each observation, queries
the clusterer for every windowed point to build a
:class:`~repro.tracking.transitions.ClusterSnapshot` with freshness weights.

This module also provides helpers to convert external-transition logs into
:class:`~repro.core.evolution.ClusterEvent` records and to compare two event
logs (e.g. EDMStream's native online log versus MONIC's offline log) — used
by the tracking ablation experiment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.decay import DecayModel
from repro.core.evolution import ClusterEvent, EvolutionType
from repro.streams.point import StreamPoint
from repro.tracking.transitions import ClusterSnapshot, ExternalTransition, TransitionType


@dataclass
class _WindowedPoint:
    point_id: Hashable
    values: Any
    timestamp: float


class SnapshotRecorder:
    """Builds object-level cluster snapshots from any stream clusterer.

    Parameters
    ----------
    clusterer:
        Any object exposing ``predict_one(values) -> int`` with ``-1`` (or
        ``noise_label``) meaning "outlier / unassigned".
    window_size:
        Number of most recent points kept in the sliding window; only these
        points appear in snapshots.
    decay:
        Optional decay model used to weight windowed points by freshness at
        observation time (MONIC's age weighting).  ``None`` weighs every
        point 1.
    noise_label:
        Label returned by the clusterer for outliers.
    """

    def __init__(
        self,
        clusterer: Any,
        window_size: int = 500,
        decay: Optional[DecayModel] = None,
        noise_label: int = -1,
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        self.clusterer = clusterer
        self.window_size = window_size
        self.decay = decay
        self.noise_label = noise_label
        self._window: Deque[_WindowedPoint] = deque(maxlen=window_size)
        self._next_auto_id = 0
        self.snapshots: List[ClusterSnapshot] = []

    # ------------------------------------------------------------------ #
    # window maintenance
    # ------------------------------------------------------------------ #
    def add_point(
        self,
        values: Any,
        timestamp: float,
        point_id: Optional[Hashable] = None,
    ) -> None:
        """Add one stream point to the sliding window."""
        if point_id is None:
            point_id = self._next_auto_id
            self._next_auto_id += 1
        self._window.append(_WindowedPoint(point_id=point_id, values=values, timestamp=timestamp))

    def add_stream_point(self, point: StreamPoint) -> None:
        """Add a :class:`~repro.streams.point.StreamPoint` to the window."""
        self.add_point(point.values, point.timestamp, point_id=point.point_id)

    def window_points(self) -> List[Tuple[Hashable, Any, float]]:
        """The (id, values, timestamp) triples currently in the window."""
        return [(p.point_id, p.values, p.timestamp) for p in self._window]

    def __len__(self) -> int:
        return len(self._window)

    # ------------------------------------------------------------------ #
    # snapshot construction
    # ------------------------------------------------------------------ #
    def snapshot(self, time: float) -> ClusterSnapshot:
        """Query the clusterer for every windowed point and build a snapshot.

        The whole window is resolved through one ``predict_many`` batch
        query when the clusterer supports it (every
        :class:`~repro.api.StreamClusterer` does — EDMStream serves it
        vectorised off its published snapshot), falling back to a
        ``predict_one`` loop for duck-typed clusterers.
        """
        windowed_points = list(self._window)
        predict_many = getattr(self.clusterer, "predict_many", None)
        if predict_many is not None and windowed_points:
            labels = [int(v) for v in predict_many([w.values for w in windowed_points])]
        else:
            labels = [int(self.clusterer.predict_one(w.values)) for w in windowed_points]
        assignment: Dict[Hashable, Hashable] = {}
        weights: Dict[Hashable, float] = {}
        locations: Dict[Hashable, Tuple[float, ...]] = {}
        for windowed, label in zip(windowed_points, labels):
            assignment[windowed.point_id] = label
            if self.decay is not None:
                weights[windowed.point_id] = self.decay.freshness(windowed.timestamp, time)
            try:
                locations[windowed.point_id] = tuple(float(v) for v in windowed.values)
            except (TypeError, ValueError):
                pass
        snapshot = ClusterSnapshot.from_assignment(
            time=time,
            assignment=assignment,
            weights=weights,
            noise_label=self.noise_label,
            locations=locations or None,
        )
        self.snapshots.append(snapshot)
        return snapshot


# ---------------------------------------------------------------------- #
# log conversion and comparison
# ---------------------------------------------------------------------- #

#: How MONIC/MEC transition types map onto the paper's five evolution types.
_TRANSITION_TO_EVOLUTION: Mapping[TransitionType, EvolutionType] = {
    TransitionType.EMERGE: EvolutionType.EMERGE,
    TransitionType.DISAPPEAR: EvolutionType.DISAPPEAR,
    TransitionType.SPLIT: EvolutionType.SPLIT,
    TransitionType.ABSORB: EvolutionType.MERGE,
    TransitionType.SURVIVE: EvolutionType.SURVIVE,
}


def events_from_external_transitions(
    transitions: Sequence[ExternalTransition],
) -> List[ClusterEvent]:
    """Convert MONIC/MEC external transitions into ClusterEvent records.

    Internal transitions and transition types without a counterpart in the
    paper's Table 1 are dropped, so that the resulting log is directly
    comparable with :class:`~repro.core.evolution.EvolutionTracker` output.
    """
    events: List[ClusterEvent] = []
    for transition in transitions:
        evolution_type = _TRANSITION_TO_EVOLUTION.get(transition.transition_type)
        if evolution_type is None:
            continue
        events.append(
            ClusterEvent(
                event_type=evolution_type,
                time=transition.time,
                old_clusters=tuple(transition.old_clusters),
                new_clusters=tuple(transition.new_clusters),
                description=transition.description,
            )
        )
    return events


def compare_event_logs(
    reference: Sequence[ClusterEvent],
    candidate: Sequence[ClusterEvent],
    time_tolerance: float = 1.0,
    types: Sequence[EvolutionType] = (
        EvolutionType.EMERGE,
        EvolutionType.DISAPPEAR,
        EvolutionType.SPLIT,
        EvolutionType.MERGE,
    ),
) -> Dict[str, Dict[str, float]]:
    """Compare two evolution-event logs per event type.

    For every type the candidate log is scored against the reference log by
    greedy time matching: a candidate event counts as a hit when a reference
    event of the same type lies within ``time_tolerance`` seconds and has not
    been matched yet.  Returns, per type, the reference/candidate counts and
    the recall and precision of the candidate.
    """
    report: Dict[str, Dict[str, float]] = {}
    for event_type in types:
        ref_times = sorted(e.time for e in reference if e.event_type == event_type)
        cand_times = sorted(e.time for e in candidate if e.event_type == event_type)
        matched_ref: set = set()
        hits = 0
        for t in cand_times:
            best_index = None
            best_gap = time_tolerance
            for i, rt in enumerate(ref_times):
                if i in matched_ref:
                    continue
                gap = abs(rt - t)
                if gap <= best_gap:
                    best_index = i
                    best_gap = gap
            if best_index is not None:
                matched_ref.add(best_index)
                hits += 1
        n_ref = len(ref_times)
        n_cand = len(cand_times)
        report[event_type.value] = {
            "reference": float(n_ref),
            "candidate": float(n_cand),
            "hits": float(hits),
            "recall": hits / n_ref if n_ref else 1.0,
            "precision": hits / n_cand if n_cand else 1.0,
        }
    return report
