"""Shared types for offline cluster-transition tracking (MONIC / MEC).

Both MONIC and MEC reason over *object-level* cluster snapshots: at each
observation time a clustering assigns a set of objects (stream points, not
cluster-cells) to clusters, and each object carries a weight.  MONIC uses an
age-based weight so that recently-arrived objects dominate the overlap
computation — here the weight is the exponential freshness of the decay
model, which keeps the trackers consistent with the rest of the library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Tuple


class TransitionType(enum.Enum):
    """External and internal cluster transitions, following MONIC's taxonomy."""

    # External transitions (between clusterings).
    SURVIVE = "survive"
    SPLIT = "split"
    ABSORB = "absorb"
    DISAPPEAR = "disappear"
    EMERGE = "emerge"
    # Internal transitions (within a surviving cluster).
    GROW = "grow"
    SHRINK = "shrink"
    MORE_COMPACT = "more_compact"
    MORE_DIFFUSE = "more_diffuse"
    SHIFT = "shift"


@dataclass(frozen=True)
class WeightedCluster:
    """One cluster of an object-level snapshot.

    Parameters
    ----------
    cluster_id:
        Identifier of the cluster within its snapshot (cluster ids do not
        need to be stable across snapshots — matching is the tracker's job).
    members:
        Identifiers of the member objects.
    weights:
        Optional per-object weight (e.g. freshness).  Objects missing from
        the mapping weigh 1.
    centroid:
        Optional numeric centroid, used for MONIC's internal location
        transition.
    dispersion:
        Optional scalar spread measure (e.g. mean distance to centroid),
        used for MONIC's internal compactness transition.
    """

    cluster_id: Hashable
    members: FrozenSet[Hashable]
    weights: Mapping[Hashable, float] = field(default_factory=dict)
    centroid: Optional[Tuple[float, ...]] = None
    dispersion: Optional[float] = None

    def weight_of(self, member: Hashable) -> float:
        """Weight of one member (1 when no explicit weight was recorded)."""
        return float(self.weights.get(member, 1.0))

    @property
    def total_weight(self) -> float:
        """Sum of the member weights."""
        return sum(self.weight_of(m) for m in self.members)

    def overlap_weight(self, other: "WeightedCluster") -> float:
        """Summed weight (under *this* cluster's weights) of the shared members."""
        return sum(self.weight_of(m) for m in self.members & other.members)

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class ClusterSnapshot:
    """A clustering of weighted objects observed at one point in time."""

    time: float
    clusters: List[WeightedCluster] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for cluster in self.clusters:
            if cluster.cluster_id in seen:
                raise ValueError(
                    f"duplicate cluster id {cluster.cluster_id!r} in snapshot at t={self.time}"
                )
            seen.add(cluster.cluster_id)

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    def cluster(self, cluster_id: Hashable) -> WeightedCluster:
        """Look up a cluster by id; raises ``KeyError`` if absent."""
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise KeyError(f"no cluster {cluster_id!r} in snapshot at t={self.time}")

    def cluster_ids(self) -> List[Hashable]:
        """All cluster ids of the snapshot."""
        return [c.cluster_id for c in self.clusters]

    def all_members(self) -> FrozenSet[Hashable]:
        """Union of all member sets."""
        members: set = set()
        for cluster in self.clusters:
            members |= cluster.members
        return frozenset(members)

    @classmethod
    def from_assignment(
        cls,
        time: float,
        assignment: Mapping[Hashable, Hashable],
        weights: Optional[Mapping[Hashable, float]] = None,
        noise_label: Hashable = -1,
        locations: Optional[Mapping[Hashable, Tuple[float, ...]]] = None,
    ) -> "ClusterSnapshot":
        """Build a snapshot from an object -> cluster-id assignment.

        Objects assigned ``noise_label`` are excluded (they belong to no
        cluster).  When ``locations`` is given, per-cluster centroids and
        dispersions are computed so that MONIC's internal transitions can be
        detected.
        """
        weights = weights or {}
        members_by_cluster: Dict[Hashable, set] = {}
        for obj, cluster_id in assignment.items():
            if cluster_id == noise_label:
                continue
            members_by_cluster.setdefault(cluster_id, set()).add(obj)

        clusters = []
        for cluster_id, members in sorted(members_by_cluster.items(), key=lambda kv: str(kv[0])):
            centroid = None
            dispersion = None
            if locations is not None:
                located = [locations[m] for m in members if m in locations]
                if located:
                    dimension = len(located[0])
                    centroid = tuple(
                        sum(point[d] for point in located) / len(located)
                        for d in range(dimension)
                    )
                    dispersion = sum(
                        _euclidean(point, centroid) for point in located
                    ) / len(located)
            clusters.append(
                WeightedCluster(
                    cluster_id=cluster_id,
                    members=frozenset(members),
                    weights={m: float(weights[m]) for m in members if m in weights},
                    centroid=centroid,
                    dispersion=dispersion,
                )
            )
        return cls(time=time, clusters=clusters)


def _euclidean(a: Tuple[float, ...], b: Tuple[float, ...]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5


@dataclass(frozen=True)
class ExternalTransition:
    """One external transition between two consecutive snapshots."""

    transition_type: TransitionType
    time: float
    old_clusters: Tuple[Hashable, ...] = ()
    new_clusters: Tuple[Hashable, ...] = ()
    overlap: float = 0.0
    description: str = ""

    def __str__(self) -> str:
        olds = ",".join(str(c) for c in self.old_clusters) or "-"
        news = ",".join(str(c) for c in self.new_clusters) or "-"
        return (
            f"[t={self.time:.2f}] {self.transition_type.value}: "
            f"{olds} -> {news} (overlap={self.overlap:.2f}) {self.description}"
        )


@dataclass(frozen=True)
class InternalTransition:
    """One internal transition of a cluster that survived between snapshots."""

    transition_type: TransitionType
    time: float
    old_cluster: Hashable
    new_cluster: Hashable
    magnitude: float = 0.0
    description: str = ""

    def __str__(self) -> str:
        return (
            f"[t={self.time:.2f}] {self.transition_type.value}: "
            f"{self.old_cluster} -> {self.new_cluster} "
            f"(magnitude={self.magnitude:.3f}) {self.description}"
        )


def transition_counts(
    transitions: Iterable[ExternalTransition],
) -> Dict[str, int]:
    """Number of external transitions per type (zero-filled for absent types)."""
    counts = {t.value: 0 for t in TransitionType}
    for transition in transitions:
        counts[transition.transition_type.value] += 1
    return counts
