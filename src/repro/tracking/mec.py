"""MEC — monitoring the evolution of clusters (Oliveira & Gama 2012).

MEC builds, between two consecutive clusterings, a bipartite *transition
graph*: an edge connects old cluster X to new cluster Y when the conditional
probability of an object of X belonging to Y,

    P(Y | X) = |X ∩ Y| / |X|,

exceeds an edge threshold.  Transitions are then read off the degrees of the
graph:

* an old cluster with no outgoing edge **dies**;
* a new cluster with no incoming edge is **born**;
* an old cluster with ≥ 2 outgoing edges **splits**;
* a new cluster with ≥ 2 incoming edges is a **merge**;
* a 1-to-1 edge whose weight reaches the survival threshold is a
  **survival**.

Compared to MONIC, MEC uses unweighted conditional probabilities and reads
all transition kinds directly from the graph structure; it is included as a
second, independent offline tracker to compare EDMStream's online evolution
log against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.tracking.transitions import (
    ClusterSnapshot,
    ExternalTransition,
    TransitionType,
    transition_counts,
)


@dataclass(frozen=True)
class TransitionEdge:
    """One edge of the bipartite transition graph."""

    old_cluster: Hashable
    new_cluster: Hashable
    #: Conditional probability P(new | old) = |old ∩ new| / |old|.
    forward: float
    #: Conditional probability P(old | new) = |old ∩ new| / |new|.
    backward: float
    #: Number of shared objects.
    shared: int


class MECTracker:
    """Detects cluster transitions from a bipartite conditional-probability graph.

    Parameters
    ----------
    edge_threshold:
        Minimum P(new | old) for an edge to be added to the transition graph.
    survival_threshold:
        Minimum P(new | old) of a 1-to-1 edge for the old cluster to count as
        surviving (rather than merely overlapping).
    """

    def __init__(self, edge_threshold: float = 0.25, survival_threshold: float = 0.5) -> None:
        if not 0.0 < edge_threshold <= 1.0:
            raise ValueError(f"edge_threshold must be in (0, 1], got {edge_threshold}")
        if not edge_threshold <= survival_threshold <= 1.0:
            raise ValueError(
                "survival_threshold must be in [edge_threshold, 1], got "
                f"{survival_threshold} (edge_threshold={edge_threshold})"
            )
        self.edge_threshold = edge_threshold
        self.survival_threshold = survival_threshold
        self.transitions: List[ExternalTransition] = []
        self.graphs: List[Tuple[float, List[TransitionEdge]]] = []
        self._previous: Optional[ClusterSnapshot] = None

    # ------------------------------------------------------------------ #
    # observation API
    # ------------------------------------------------------------------ #
    def observe(self, snapshot: ClusterSnapshot) -> List[ExternalTransition]:
        """Record a snapshot and return the transitions it triggered."""
        if self._previous is None:
            transitions = [
                ExternalTransition(
                    transition_type=TransitionType.EMERGE,
                    time=snapshot.time,
                    new_clusters=(cluster.cluster_id,),
                    description="initial cluster",
                )
                for cluster in snapshot
            ]
            self.graphs.append((snapshot.time, []))
        else:
            edges = self.build_graph(self._previous, snapshot)
            self.graphs.append((snapshot.time, edges))
            transitions = self._read_transitions(self._previous, snapshot, edges)
        self.transitions.extend(transitions)
        self._previous = snapshot
        return transitions

    # ------------------------------------------------------------------ #
    # graph construction and interpretation
    # ------------------------------------------------------------------ #
    def build_graph(
        self, old: ClusterSnapshot, new: ClusterSnapshot
    ) -> List[TransitionEdge]:
        """Bipartite transition graph between two snapshots."""
        edges: List[TransitionEdge] = []
        for old_cluster in old:
            if not old_cluster.members:
                continue
            for new_cluster in new:
                shared = len(old_cluster.members & new_cluster.members)
                if shared == 0:
                    continue
                forward = shared / len(old_cluster.members)
                backward = shared / len(new_cluster.members) if new_cluster.members else 0.0
                if forward >= self.edge_threshold or backward >= self.edge_threshold:
                    edges.append(
                        TransitionEdge(
                            old_cluster=old_cluster.cluster_id,
                            new_cluster=new_cluster.cluster_id,
                            forward=forward,
                            backward=backward,
                            shared=shared,
                        )
                    )
        return edges

    def _read_transitions(
        self,
        old: ClusterSnapshot,
        new: ClusterSnapshot,
        edges: List[TransitionEdge],
    ) -> List[ExternalTransition]:
        time = new.time
        transitions: List[ExternalTransition] = []

        out_edges: Dict[Hashable, List[TransitionEdge]] = {
            c.cluster_id: [] for c in old
        }
        in_edges: Dict[Hashable, List[TransitionEdge]] = {
            c.cluster_id: [] for c in new
        }
        for edge in edges:
            out_edges[edge.old_cluster].append(edge)
            in_edges[edge.new_cluster].append(edge)

        # Deaths and splits from the old side.
        for old_id, outgoing in out_edges.items():
            if not outgoing:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.DISAPPEAR,
                        time=time,
                        old_clusters=(old_id,),
                        description=f"cluster {old_id} died",
                    )
                )
            elif len(outgoing) >= 2:
                targets = tuple(sorted((e.new_cluster for e in outgoing), key=str))
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.SPLIT,
                        time=time,
                        old_clusters=(old_id,),
                        new_clusters=targets,
                        overlap=sum(e.forward for e in outgoing),
                        description=f"cluster {old_id} split into {len(targets)} clusters",
                    )
                )

        # Births and merges from the new side.
        for new_id, incoming in in_edges.items():
            if not incoming:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.EMERGE,
                        time=time,
                        new_clusters=(new_id,),
                        description=f"cluster {new_id} was born",
                    )
                )
            elif len(incoming) >= 2:
                sources = tuple(sorted((e.old_cluster for e in incoming), key=str))
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.ABSORB,
                        time=time,
                        old_clusters=sources,
                        new_clusters=(new_id,),
                        overlap=min(e.forward for e in incoming),
                        description=f"{len(sources)} clusters merged into {new_id}",
                    )
                )

        # Survivals: 1-to-1 edges strong enough in the forward direction.
        for old_id, outgoing in out_edges.items():
            if len(outgoing) != 1:
                continue
            edge = outgoing[0]
            if len(in_edges[edge.new_cluster]) != 1:
                continue
            if edge.forward >= self.survival_threshold:
                transitions.append(
                    ExternalTransition(
                        transition_type=TransitionType.SURVIVE,
                        time=time,
                        old_clusters=(old_id,),
                        new_clusters=(edge.new_cluster,),
                        overlap=edge.forward,
                        description=f"cluster {old_id} survived as {edge.new_cluster}",
                    )
                )
        return transitions

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def counts(self) -> Dict[str, int]:
        """Number of recorded transitions per type."""
        return transition_counts(self.transitions)

    def transitions_of_type(self, transition_type: TransitionType) -> List[ExternalTransition]:
        """Transitions of one type, in time order."""
        return [t for t in self.transitions if t.transition_type == transition_type]
