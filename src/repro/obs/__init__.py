"""Telemetry subsystem: low-overhead metrics, phase tracing, event ring.

``repro.obs`` is the observability substrate for the whole reproduction:

* :mod:`repro.obs.registry` — named counters / gauges / fixed-bucket
  histograms over preallocated numpy storage, plus the null variants that
  make the disabled path cost one attribute lookup.
* :mod:`repro.obs.timing` — the :class:`Telemetry` facade and ``phase(...)``
  context/decorator tracing the batch-ingest pipeline stages.
* :mod:`repro.obs.events` — a bounded structured event ring (cluster
  evolution, eviction-to-sketch, worker restarts, snapshot bumps).
* :mod:`repro.obs.export` — JSON / Prometheus text exposition and the
  ``python -m repro stats`` live serving-stats command.

Wiring convention: instrumented objects hold ``self.obs``, defaulting to
:data:`NULL_TELEMETRY`; enabling telemetry swaps in a real
:class:`Telemetry` and changes nothing else — the off path is bit-identical
by construction (telemetry observes, it never steers).
"""

from repro.obs.events import EVENT_KINDS, NULL_EVENT_RING, EventRing, NullEventRing
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
    NullRegistry,
    quantile_from_buckets,
)
from repro.obs.timing import NULL_TELEMETRY, PHASES, NullTelemetry, Telemetry, enable_telemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullInstrument",
    "NullRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS_S",
    "quantile_from_buckets",
    "EventRing",
    "NullEventRing",
    "NULL_EVENT_RING",
    "EVENT_KINDS",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "PHASES",
    "enable_telemetry",
]
