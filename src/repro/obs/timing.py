"""Phase tracing: accumulated wall-clock per pipeline stage, plus the facade.

:class:`Telemetry` is the object the rest of the codebase holds — it bundles
a :class:`~repro.obs.registry.MetricsRegistry`, an
:class:`~repro.obs.events.EventRing`, and a set of **phase timers**.
``telemetry.phase("assign")`` returns a reusable context manager (usable as
a decorator too) that adds elapsed ``perf_counter`` seconds and a call count
to that phase's slot in a preallocated array.

Instrumentation granularity is deliberately coarse: phases wrap whole batch
chunks / maintenance passes, never per-point work, so the enabled overhead
on batch-256 ingest stays within the 5% budget enforced by ``BENCH_obs.json``.

The disabled path is :data:`NULL_TELEMETRY` — a singleton whose ``phase()``
returns one shared no-op context manager and whose registry/event ring are
the null variants.  Code is wired as ``self.obs = NULL_TELEMETRY`` by
default, so "telemetry off" costs an attribute lookup and an empty method
call at each (chunk-granularity) instrumentation point and is bit-identical
to the un-instrumented behaviour: telemetry only observes, it never steers.

Phase contexts are reused per name and therefore **must not self-nest**
(``with obs.phase("x"): ... with obs.phase("x")``); distinct phases nest
fine.  All wired phases are non-reentrant by construction.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Sequence

import numpy as np

from repro.obs.events import NULL_EVENT_RING, EventRing
from repro.obs.registry import NULL_INSTRUMENT, NULL_REGISTRY, MetricsRegistry

__all__ = ["PHASES", "Telemetry", "NullTelemetry", "NULL_TELEMETRY", "enable_telemetry"]

# Canonical phase catalog (docs/ARCHITECTURE.md "Observability" documents
# each).  Unknown names are accepted and appended dynamically; these are the
# ones the wired pipeline emits.
PHASES = (
    "assign",  # batch nearest-seed assignment (BatchIngestor._assign_chunk)
    "absorb",  # closed-form decay + absorption (BatchIngestor._apply_absorptions)
    "dependency",  # DP-tree dependency repair (BatchIngestor._repair_dependencies)
    "maintenance",  # periodic cell activation/deactivation + cap enforcement
    "tau_search",  # adaptive tau re-optimisation
    "snapshot_publish",  # ClusterSnapshot construction/publication
    "sketch_evict",  # BoundedCellStore eviction-to-sketch sweeps
    "sketch_revive",  # sketch-backed revival of returning cells
)


class _PhaseContext:
    """Reusable timer for one phase; ``with`` block or ``@`` decorator."""

    __slots__ = ("name", "_seconds", "_counts", "_index", "_t0")

    def __init__(self, name: str, seconds: np.ndarray, counts: np.ndarray, index: int):
        self.name = name
        self._seconds = seconds
        self._counts = counts
        self._index = index
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        index = self._index
        self._seconds[index] += perf_counter() - self._t0
        self._counts[index] += 1

    def __call__(self, fn):
        """Decorator form: time every call of ``fn`` under this phase."""

        def wrapped(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        return wrapped


class Telemetry:
    """Live telemetry facade: registry + event ring + phase timers."""

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventRing] = None,
        phases: Sequence[str] = PHASES,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else EventRing()
        capacity = max(len(phases) * 2, 16)
        self._phase_seconds = np.zeros(capacity, dtype=np.float64)
        self._phase_counts = np.zeros(capacity, dtype=np.int64)
        self._contexts: Dict[str, _PhaseContext] = {}
        for name in phases:
            self._register_phase(name)

    def _register_phase(self, name: str) -> _PhaseContext:
        index = len(self._contexts)
        if index == len(self._phase_seconds):
            self._phase_seconds = np.concatenate(
                [self._phase_seconds, np.zeros_like(self._phase_seconds)]
            )
            self._phase_counts = np.concatenate(
                [self._phase_counts, np.zeros_like(self._phase_counts)]
            )
            for context in self._contexts.values():
                context._seconds = self._phase_seconds
                context._counts = self._phase_counts
        context = _PhaseContext(name, self._phase_seconds, self._phase_counts, index)
        self._contexts[name] = context
        return context

    def phase(self, name: str) -> _PhaseContext:
        """Reusable timing context for phase ``name`` (created on demand)."""
        context = self._contexts.get(name)
        if context is None:
            context = self._register_phase(name)
        return context

    # Convenience pass-throughs so call sites need only hold the facade.
    def counter(self, name: str):
        """Registry counter pass-through."""
        return self.registry.counter(name)

    def gauge(self, name: str):
        """Registry gauge pass-through."""
        return self.registry.gauge(name)

    def histogram(self, name: str, buckets=None):
        """Registry histogram pass-through."""
        if buckets is None:
            return self.registry.histogram(name)
        return self.registry.histogram(name, buckets)

    def record_event(self, kind: str, time: float = 0.0, **fields) -> None:
        """Push one structured event into the ring."""
        self.events.push(kind, time=time, **fields)

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds": ..., "count": ...}}`` for every known phase."""
        return {
            name: {
                "seconds": float(self._phase_seconds[context._index]),
                "count": int(self._phase_counts[context._index]),
            }
            for name, context in self._contexts.items()
        }

    def snapshot(self) -> Dict[str, object]:
        """Full copy-out snapshot: metrics, phases, event counts + tail."""
        return {
            "metrics": self.registry.snapshot(),
            "phases": self.phase_totals(),
            "event_counts": self.events.counts(),
            "events": self.events.snapshot(),
        }


class _NullPhaseContext:
    """Shared no-op timing context (and pass-through decorator)."""

    __slots__ = ()

    name = "null"

    def __enter__(self) -> "_NullPhaseContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __call__(self, fn):
        return fn


_NULL_PHASE = _NullPhaseContext()


class NullTelemetry:
    """Disabled-path facade: every operation is a shared no-op.

    ``phase()`` always returns the one shared null context, ``registry`` and
    ``events`` are the null variants, and ``record_event`` is an empty
    method — so instrumented code runs unchanged with zero observable
    side effects and (near-)zero cost.
    """

    __slots__ = ()

    enabled = False
    registry = NULL_REGISTRY
    events = NULL_EVENT_RING

    def phase(self, name: str) -> _NullPhaseContext:
        """Return the shared no-op context."""
        return _NULL_PHASE

    def counter(self, name: str):
        """Return the shared null instrument."""
        return NULL_INSTRUMENT

    def gauge(self, name: str):
        """Return the shared null instrument."""
        return NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None):
        """Return the shared null instrument."""
        return NULL_INSTRUMENT

    def record_event(self, kind: str, time: float = 0.0, **fields) -> None:
        """Do nothing."""

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Always empty."""
        return {}

    def snapshot(self) -> Dict[str, object]:
        """Empty snapshot in the enabled-path shape."""
        return {"metrics": {}, "phases": {}, "event_counts": {}, "events": []}


NULL_TELEMETRY = NullTelemetry()


def enable_telemetry(model) -> Telemetry:
    """Attach a fresh :class:`Telemetry` to ``model`` and return it.

    Works on any object using the ``self.obs`` convention (``EDMStream``
    and the subsystems it wires).  Used by the serving publisher to turn
    telemetry on for factory-built models without changing the factory.
    """
    telemetry = Telemetry()
    model.obs = telemetry
    bounded = getattr(model, "_bounded", None)
    if bounded is not None:
        bounded.obs = telemetry
    return telemetry
