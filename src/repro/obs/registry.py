"""Named counters, gauges, and fixed-bucket histograms on preallocated arrays.

The registry is the storage layer of the telemetry subsystem
(:mod:`repro.obs`).  Design constraints, in order:

1. **Hot-path increments must not allocate.**  Every instrument is a view
   into a preallocated ``float64`` numpy array owned by the registry; an
   increment is a single in-place element write.  Instruments are created
   once (at wiring time) and cached by name, so steady-state operation
   performs no dictionary mutation and no object construction.
2. **The disabled path must cost one attribute lookup.**
   :data:`NULL_REGISTRY` hands out a single shared :class:`NullInstrument`
   whose ``inc``/``set``/``observe`` bodies are empty.  Code holding a null
   instrument pays one bound-method call per event; code holding the null
   registry pays one dictionary-free method call per instrument request.
3. **Snapshots are cheap and copy-out.**  :meth:`MetricsRegistry.snapshot`
   returns plain Python floats/lists so the result can be serialised or
   shipped across a pipe without touching the live arrays again.

Histograms use fixed, caller-supplied bucket upper bounds (Prometheus
``le`` semantics: a sample lands in the first bucket whose bound is >= the
value, with an implicit ``+Inf`` overflow bucket).  Quantiles are estimated
from the cumulative bucket counts, which is exactly the estimate a
Prometheus ``histogram_quantile`` would produce.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullInstrument",
    "NullRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS_S",
]

# Log-spaced latency bounds (seconds): 10us .. ~163ms, then +Inf overflow.
# Shared by the serving stats block and the frontend histograms so the two
# surfaces report comparable quantiles.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(1e-5 * 2.0**i for i in range(15))


class Counter:
    """Monotonic counter backed by one slot of the registry's value array."""

    __slots__ = ("name", "_values", "_index")

    def __init__(self, name: str, values: np.ndarray, index: int):
        self.name = name
        self._values = values
        self._index = index

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (in-place array write; no allocation)."""
        self._values[self._index] += amount

    @property
    def value(self) -> float:
        """Current total as a plain float."""
        return float(self._values[self._index])


class Gauge:
    """Point-in-time value backed by one slot of the registry's value array."""

    __slots__ = ("name", "_values", "_index")

    def __init__(self, name: str, values: np.ndarray, index: int):
        self.name = name
        self._values = values
        self._index = index

    def set(self, value: float) -> None:
        """Overwrite the gauge (in-place array write)."""
        self._values[self._index] = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (negative amounts allowed)."""
        self._values[self._index] += amount

    @property
    def value(self) -> float:
        """Current value as a plain float."""
        return float(self._values[self._index])


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (upper-bound) semantics.

    ``buckets`` are strictly increasing finite upper bounds; an implicit
    ``+Inf`` bucket catches overflow.  Counts, sum, and count live in one
    preallocated array (``len(buckets) + 3`` slots), so :meth:`observe` is
    a ``bisect`` plus two in-place element writes.
    """

    __slots__ = ("name", "buckets", "_state")

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be a non-empty increasing sequence")
        self.name = name
        self.buckets = bounds
        # Layout: [bucket_0 .. bucket_n-1, overflow, sum, count]
        self._state = np.zeros(len(bounds) + 3, dtype=np.float64)

    def observe(self, value: float) -> None:
        """Record one sample."""
        state = self._state
        state[bisect_left(self.buckets, value)] += 1.0
        state[-2] += value
        state[-1] += 1.0

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return int(self._state[-1])

    @property
    def sum(self) -> float:
        """Sum of recorded samples."""
        return float(self._state[-2])

    @property
    def mean(self) -> float:
        """Mean of recorded samples (0.0 when empty)."""
        n = self._state[-1]
        return float(self._state[-2] / n) if n else 0.0

    def bucket_counts(self) -> List[float]:
        """Per-bucket counts including the trailing ``+Inf`` overflow bucket."""
        return [float(c) for c in self._state[:-2]]

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the cumulative bucket counts.

        Linear interpolation within the winning bucket (the standard
        Prometheus ``histogram_quantile`` estimate); returns the last
        finite bound when the quantile lands in the overflow bucket.
        """
        return quantile_from_buckets(self.buckets, self._state[:-2], q)


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[float], q: float
) -> float:
    """Quantile estimate for bucketed counts (``bounds`` exclude ``+Inf``).

    ``counts`` has ``len(bounds) + 1`` entries — the final entry is the
    overflow bucket.  Returns 0.0 when the histogram is empty.
    """
    total = float(sum(counts))
    if total <= 0.0:
        return 0.0
    rank = max(0.0, min(1.0, q)) * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        previous = cumulative
        cumulative += float(count)
        if cumulative >= rank:
            if i >= len(bounds):  # overflow bucket: clamp to last finite bound
                return float(bounds[-1])
            lower = float(bounds[i - 1]) if i > 0 else 0.0
            upper = float(bounds[i])
            if count <= 0.0:
                return upper
            return lower + (upper - lower) * (rank - previous) / float(count)
    return float(bounds[-1])


class MetricsRegistry:
    """Registry of named instruments over preallocated storage.

    Counters and gauges share one ``float64`` array (grown geometrically,
    only at instrument-creation time); each histogram owns its own small
    state array.  Requesting an existing name returns the cached instrument;
    requesting it with a conflicting kind raises ``ValueError``.
    """

    def __init__(self, capacity: int = 64):
        self._values = np.zeros(max(8, int(capacity)), dtype=np.float64)
        self._used = 0
        self._instruments: Dict[str, object] = {}

    def _alloc(self) -> int:
        if self._used == len(self._values):
            grown = np.zeros(len(self._values) * 2, dtype=np.float64)
            grown[: self._used] = self._values
            # Re-point existing instruments at the new storage.
            for instrument in self._instruments.values():
                if isinstance(instrument, (Counter, Gauge)):
                    instrument._values = grown
            self._values = grown
        index = self._used
        self._used += 1
        return index

    def _get(self, name: str, kind: type, factory) -> object:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {type(existing).__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def _make_scalar(self, kind: type, name: str) -> object:
        # _alloc may regrow (and replace) the array, so it must run before
        # the storage reference is taken.
        index = self._alloc()
        return kind(name, self._values, index)

    def counter(self, name: str) -> Counter:
        """Return (creating on first request) the counter called ``name``."""
        return self._get(name, Counter, lambda: self._make_scalar(Counter, name))

    def gauge(self, name: str) -> Gauge:
        """Return (creating on first request) the gauge called ``name``."""
        return self._get(name, Gauge, lambda: self._make_scalar(Gauge, name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> Histogram:
        """Return (creating on first request) the histogram called ``name``."""
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """Copy-out view: ``{name: {"kind": ..., "value"/"buckets": ...}}``."""
        out: Dict[str, dict] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"kind": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"kind": "gauge", "value": instrument.value}
            else:
                hist: Histogram = instrument  # type: ignore[assignment]
                out[name] = {
                    "kind": "histogram",
                    "count": hist.count,
                    "sum": hist.sum,
                    "buckets": list(hist.buckets),
                    "bucket_counts": hist.bucket_counts(),
                }
        return out


class NullInstrument:
    """Shared no-op stand-in for every instrument kind.

    The method bodies are empty so a disabled-telemetry call site pays one
    bound-method call and allocates nothing (verified by
    ``tests/test_obs.py``).
    """

    __slots__ = ()

    name = "null"
    buckets: Tuple[float, ...] = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Do nothing."""

    def set(self, value: float) -> None:
        """Do nothing."""

    def observe(self, value: float) -> None:
        """Do nothing."""

    def bucket_counts(self) -> List[float]:
        """Empty counts."""
        return []

    def quantile(self, q: float) -> float:
        """Always 0.0."""
        return 0.0


NULL_INSTRUMENT = NullInstrument()


class NullRegistry:
    """Registry stand-in whose every instrument is :data:`NULL_INSTRUMENT`."""

    __slots__ = ()

    def counter(self, name: str) -> NullInstrument:
        """Return the shared null instrument."""
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> NullInstrument:
        """Return the shared null instrument."""
        return NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> NullInstrument:
        """Return the shared null instrument."""
        return NULL_INSTRUMENT

    def names(self) -> List[str]:
        """Always empty."""
        return []

    def snapshot(self) -> Dict[str, dict]:
        """Always empty."""
        return {}


NULL_REGISTRY = NullRegistry()
