"""Bounded structured event ring for discrete telemetry occurrences.

Phase timers and counters answer "where is time going"; the event ring
answers "what just happened".  It records discrete, low-rate occurrences —
cluster evolution transitions from the MONIC-style tracker (split / merge /
survive / emerge / disappear), cell eviction-to-sketch and sketch revival,
serving-worker restarts, snapshot version bumps — in a fixed-capacity ring
so memory stays bounded no matter how long the stream runs.

Entries are plain tuples ``(seq, time, kind, fields)`` stored in a
preallocated list; pushing overwrites the oldest slot once the ring is
full.  ``seq`` is a monotonically increasing sequence number, so consumers
can detect how many events were dropped between two reads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["EventRing", "NullEventRing", "NULL_EVENT_RING", "EVENT_KINDS"]

# Catalog of the event kinds the wired subsystems emit.  Free-form kinds are
# accepted too; this tuple exists so docs and tests have one reference list.
EVENT_KINDS = (
    "cluster_emerge",
    "cluster_disappear",
    "cluster_split",
    "cluster_merge",
    "cluster_survive",
    "cluster_adjust",
    "cell_evicted",
    "cell_revived",
    "worker_restart",
    "snapshot_publish",
)


class EventRing:
    """Fixed-capacity ring of structured events, oldest-first on read."""

    __slots__ = ("capacity", "_slots", "_seq", "_counts")

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("event ring capacity must be positive")
        self.capacity = int(capacity)
        self._slots: List[Optional[tuple]] = [None] * self.capacity
        self._seq = 0
        self._counts: Dict[str, int] = {}

    def push(self, kind: str, time: float = 0.0, **fields: Any) -> int:
        """Record one event; returns its sequence number."""
        seq = self._seq
        self._slots[seq % self.capacity] = (seq, float(time), kind, fields)
        self._seq = seq + 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        return seq

    def __len__(self) -> int:
        return min(self._seq, self.capacity)

    @property
    def total(self) -> int:
        """Events ever pushed (including those overwritten)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events overwritten before they could be read."""
        return max(0, self._seq - self.capacity)

    def counts(self) -> Dict[str, int]:
        """Lifetime per-kind totals (not bounded by capacity)."""
        return dict(self._counts)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Retained events oldest-first as plain dicts."""
        if self._seq == 0:
            return []
        start = max(0, self._seq - self.capacity)
        out = []
        for seq in range(start, self._seq):
            slot = self._slots[seq % self.capacity]
            if slot is None:  # pragma: no cover - defensive
                continue
            out.append(
                {"seq": slot[0], "time": slot[1], "kind": slot[2], **slot[3]}
            )
        return out


class NullEventRing:
    """No-op ring for the disabled-telemetry path."""

    __slots__ = ()

    capacity = 0
    total = 0
    dropped = 0

    def push(self, kind: str, time: float = 0.0, **fields: Any) -> int:
        """Do nothing."""
        return 0

    def __len__(self) -> int:
        return 0

    def counts(self) -> Dict[str, int]:
        """Always empty."""
        return {}

    def snapshot(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []


NULL_EVENT_RING = NullEventRing()
