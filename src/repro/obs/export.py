"""Telemetry export: JSON dump, Prometheus-style text, live-stats CLI.

Three consumers, one module:

* :func:`to_json` — serialise a :class:`~repro.obs.timing.Telemetry`
  snapshot (or any snapshot dict) for ``telemetry.json`` run artifacts.
* :func:`to_prometheus` — Prometheus text exposition (``# TYPE`` headers,
  ``_total`` counter suffixes, ``le``-labelled histogram buckets) so a
  scrape endpoint can be bolted on without reformatting.
* :func:`stats_main` — the ``python -m repro stats <token>`` command: it
  attaches **read-only** to a live serving cluster's shared-memory stats
  block (:class:`repro.serving.stats.StatsBlock`), takes two samples
  ``--interval`` seconds apart, and prints per-worker QPS / p50 / p99 /
  snapshot staleness plus the publisher's ingest phase breakdown.  The
  workers are never touched — no pipes, no signals, just two lock-free
  shared-memory reads.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.obs.registry import quantile_from_buckets
from repro.obs.timing import Telemetry

__all__ = ["to_json", "to_prometheus", "sample_stats", "stats_report", "render_stats", "stats_main"]


def _as_snapshot(telemetry_or_snapshot) -> Dict[str, object]:
    if isinstance(telemetry_or_snapshot, dict):
        return telemetry_or_snapshot
    return telemetry_or_snapshot.snapshot()


def to_json(telemetry_or_snapshot, indent: int = 2) -> str:
    """Serialise a telemetry snapshot (sorted keys, trailing newline)."""
    snapshot = _as_snapshot(telemetry_or_snapshot)
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"


def _sanitize(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def to_prometheus(telemetry_or_snapshot, prefix: str = "repro") -> str:
    """Render a telemetry snapshot in the Prometheus text format."""
    snapshot = _as_snapshot(telemetry_or_snapshot)
    lines: List[str] = []
    for name in sorted(snapshot.get("metrics", {})):
        data = snapshot["metrics"][name]
        metric = f"{prefix}_{_sanitize(name)}"
        kind = data["kind"]
        if kind == "counter":
            total = metric if metric.endswith("_total") else f"{metric}_total"
            lines.append(f"# TYPE {total} counter")
            lines.append(f"{total} {data['value']:.10g}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {data['value']:.10g}")
        else:  # histogram
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0.0
            for bound, count in zip(data["buckets"], data["bucket_counts"]):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{bound:.10g}"}} {cumulative:.10g}')
            cumulative += data["bucket_counts"][-1] if data["bucket_counts"] else 0.0
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative:.10g}')
            lines.append(f"{metric}_sum {data['sum']:.10g}")
            lines.append(f"{metric}_count {data['count']:.10g}")
    phases = snapshot.get("phases", {})
    if phases:
        lines.append(f"# TYPE {prefix}_phase_seconds_total counter")
        for phase in sorted(phases):
            lines.append(
                f'{prefix}_phase_seconds_total{{phase="{_sanitize(phase)}"}} '
                f"{phases[phase]['seconds']:.10g}"
            )
        lines.append(f"# TYPE {prefix}_phase_calls_total counter")
        for phase in sorted(phases):
            lines.append(
                f'{prefix}_phase_calls_total{{phase="{_sanitize(phase)}"}} '
                f"{phases[phase]['count']:.10g}"
            )
    event_counts = snapshot.get("event_counts", {})
    if event_counts:
        lines.append(f"# TYPE {prefix}_events_total counter")
        for kind in sorted(event_counts):
            lines.append(
                f'{prefix}_events_total{{kind="{_sanitize(kind)}"}} {event_counts[kind]:d}'
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------- #
# live serving stats (python -m repro stats)
# ---------------------------------------------------------------------- #
def sample_stats(token: str) -> Dict[str, object]:
    """One read-only sample of a serving token's stats segment."""
    from repro.serving.stats import StatsBlock  # deferred: keeps obs core light

    block = StatsBlock.attach(token)
    try:
        sample = block.read()
    finally:
        block.close()
    sample["sampled_at"] = time.time()
    return sample


def stats_report(
    first: Dict[str, object], second: Dict[str, object], interval_s: float
) -> Dict[str, object]:
    """Derive rates and quantiles from two stats samples ``interval_s`` apart."""
    interval_s = max(interval_s, 1e-9)
    buckets = second["latency_buckets_s"]
    first_workers = {w["slot"]: w for w in first["workers"]}
    now = second.get("sampled_at", time.time())
    workers = []
    for worker in second["workers"]:
        slot = worker["slot"]
        previous = first_workers.get(slot)
        queries_delta = worker["queries"] - (previous["queries"] if previous else 0.0)
        # Quantiles from the *delta* of bucket counts: the latency profile
        # over the sampling window, not over the worker's whole lifetime.
        if previous is not None:
            delta_counts = [
                max(0.0, b - a)
                for a, b in zip(
                    previous["latency_bucket_counts"], worker["latency_bucket_counts"]
                )
            ]
        else:
            delta_counts = worker["latency_bucket_counts"]
        window = delta_counts if sum(delta_counts) > 0 else worker["latency_bucket_counts"]
        workers.append(
            {
                "slot": slot,
                "pid": worker["pid"],
                "alive": (now - worker["heartbeat"]) < max(5.0, 5 * interval_s),
                "qps": queries_delta / interval_s,
                "queries_total": worker["queries"],
                "batches_total": worker["batches"],
                "p50_s": quantile_from_buckets(buckets, window, 0.50),
                "p99_s": quantile_from_buckets(buckets, window, 0.99),
                "mean_s": (
                    worker["latency_sum_s"] / worker["latency_count"]
                    if worker["latency_count"]
                    else 0.0
                ),
                "snapshot_version": worker["snapshot_version"],
                "snapshot_staleness_s": worker["snapshot_staleness_s"],
            }
        )
    pub_first, pub_second = first["publisher"], second["publisher"]
    points_delta = pub_second["points_ingested"] - pub_first["points_ingested"]
    publisher = {
        "points_ingested": pub_second["points_ingested"],
        "points_per_s": points_delta / interval_s,
        "publishes": pub_second["publishes"],
        "last_publish_age_s": (
            max(0.0, now - pub_second["last_published_at"])
            if pub_second["last_published_at"]
            else None
        ),
        "phases": pub_second["phases"],
    }
    return {
        "token_segment": second["token_segment"],
        "interval_s": interval_s,
        "publisher": publisher,
        "workers": workers,
    }


def render_stats(report: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`stats_report` output."""
    lines = [f"serving stats — {report['token_segment']} (window {report['interval_s']:.2f}s)"]
    publisher = report["publisher"]
    age = publisher["last_publish_age_s"]
    lines.append(
        "publisher: "
        f"{publisher['points_ingested']:.0f} points "
        f"({publisher['points_per_s']:.0f} pts/s), "
        f"{publisher['publishes']:.0f} publishes"
        + (f", last publish {age:.2f}s ago" if age is not None else "")
    )
    phases = publisher["phases"]
    if phases:
        total = sum(p["seconds"] for p in phases.values()) or 1.0
        lines.append("ingest phase breakdown:")
        for phase, data in sorted(phases.items(), key=lambda kv: -kv[1]["seconds"]):
            lines.append(
                f"  {phase:<18} {data['seconds']:9.3f}s  {100.0 * data['seconds'] / total:5.1f}%"
                f"  ({data['count']} calls)"
            )
    if report["workers"]:
        lines.append(
            f"{'worker':>6} {'pid':>7} {'alive':>5} {'qps':>10} {'p50':>9} "
            f"{'p99':>9} {'stale':>8} {'version':>8}"
        )
        for worker in report["workers"]:
            lines.append(
                f"{worker['slot']:>6} {worker['pid']:>7} "
                f"{'yes' if worker['alive'] else 'no':>5} "
                f"{worker['qps']:>10.0f} "
                f"{1e3 * worker['p50_s']:>8.2f}m "
                f"{1e3 * worker['p99_s']:>8.2f}m "
                f"{worker['snapshot_staleness_s']:>7.2f}s "
                f"{worker['snapshot_version']:>8}"
            )
    else:
        lines.append("no active worker slots")
    return "\n".join(lines)


def stats_main(
    token: str,
    interval_s: float = 1.0,
    as_json: bool = False,
    _print=print,
    sleep=time.sleep,
) -> int:
    """Body of ``python -m repro stats``: sample twice, derive, print."""
    try:
        first = sample_stats(token)
    except FileNotFoundError:
        _print(
            f"no stats segment for token {token!r} — is a ServingCluster "
            "running with this token?"
        )
        return 1
    sleep(max(0.0, interval_s))
    second = sample_stats(token)
    elapsed = second["sampled_at"] - first["sampled_at"]
    report = stats_report(first, second, elapsed if elapsed > 0 else interval_s)
    if as_json:
        _print(json.dumps(report, indent=2, sort_keys=True))
    else:
        _print(render_stats(report))
    return 0


def write_telemetry_json(path, telemetry: Optional[Telemetry], extra: Optional[dict] = None):
    """Write a ``telemetry.json`` artifact (used by the fleet runner)."""
    payload: Dict[str, object] = dict(extra or {})
    payload["telemetry"] = None if telemetry is None else _as_snapshot(telemetry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path
