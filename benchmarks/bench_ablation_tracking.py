"""Ablation — online (DP-Tree) evolution tracking vs offline MONIC / MEC.

Shape that must hold: the offline trackers, fed with periodic snapshots of
the same model, see an evolution story of the same order of magnitude (they
cannot see more than the snapshots expose), and the offline pass costs extra
time on top of the online updates — the overhead EDMStream's native tracking
avoids (Sections 1 and 7).
"""

from _bench_utils import record, run_once

from repro.harness import ablations


def bench_ablation_tracking(benchmark):
    result = run_once(
        benchmark,
        lambda: ablations.experiment_tracking_comparison(n_points=10000),
    )
    record(result)
    counts = {row["tracker"]: row for row in result.tables["event_counts"]}
    online = counts["EDMStream (online)"]
    # The online tracker must have seen the SDS story: at least one merge or
    # split plus emergences.
    assert online["emerge"] >= 1
    assert online["merge"] + online["split"] >= 1
    # The offline trackers operate on the same model's snapshots, so they
    # must also detect activity (non-empty logs).
    for name in ("MONIC (offline)", "MEC (offline)"):
        assert sum(counts[name].get(k, 0) for k in ("emerge", "disappear", "split", "merge")) >= 1
    cost = {row["component"]: row["seconds"] for row in result.tables["cost"]}
    assert all(value >= 0 for value in cost.values())
