"""Ablation — online (DP-Tree) evolution tracking vs offline MONIC / MEC.

Gate: the offline trackers recover the same merge/split/emerge/disappear
story from snapshots that the online log produces for free.
"""

from _bench_utils import spec_bench

bench_ablation_tracking = spec_bench("ablation_tracking")
