"""Figure 14 — EDMStream's cluster quality (CMM) at different stream rates.

The shape that must hold: quality stays stable (no collapse) when the same
stream is replayed at 1k, 5k and 10k points per second.
"""

from _bench_utils import record, run_once

from repro.harness import experiments


def bench_fig14_stream_rate(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_stream_rate(
            rates=(1000.0, 5000.0, 10000.0),
            dataset="CoverType",
            n_points=6000,
            checkpoint_every=2000,
            quality_window=300,
        ),
    )
    record(result)
    values = [row["mean_cmm"] for row in result.tables["summary"]]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert max(values) - min(values) < 0.35, "CMM should be stable across stream rates"
