"""Figure 14 — sensitivity to the stream arrival rate.

Gate: quality stays flat while the response time stays bounded as the
rate grows from 1K/s to 10K/s.
"""

from _bench_utils import spec_bench

bench_fig14_stream_rate = spec_bench("fig14")
