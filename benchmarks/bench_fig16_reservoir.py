"""Figure 16 — outlier-reservoir size vs its theoretical upper bound."""

from _bench_utils import record, run_once

from repro.harness import experiments


def bench_fig16_reservoir(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_reservoir(
            rates=(1000.0, 5000.0, 10000.0),
            datasets=("CoverType", "PAMAP2"),
            n_points=6000,
        ),
    )
    record(result)
    for row in result.tables["summary"]:
        assert row["within_bound"], (
            f"measured reservoir size exceeded the Theorem-3 bound on {row['dataset']}"
        )
        assert row["max_measured_size"] <= row["upper_bound"]
