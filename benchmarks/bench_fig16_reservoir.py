"""Figure 16 — outlier-reservoir size over time and arrival rate.

Gate: the reservoir stays bounded and shrinks after the decay catches up
with each rate step.
"""

from _bench_utils import spec_bench

bench_fig16_reservoir = spec_bench("fig16")
