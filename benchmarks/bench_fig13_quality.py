"""Figure 13 — clustering quality (purity) of EDMStream vs the baselines.

Gate: EDMStream's mean purity is competitive with the best baseline on
every dataset, within the paper's tolerance.
"""

from _bench_utils import spec_bench

bench_fig13_quality = spec_bench("fig13")
