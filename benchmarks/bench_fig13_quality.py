"""Figure 13 — cluster quality (CMM) of EDMStream vs the baselines.

The shape that must hold: EDMStream's CMM is comparable to the best
baselines (within a small margin of the maximum observed on each dataset).
"""

from _bench_utils import record, run_once

from repro.harness import experiments


def bench_fig13_quality(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_quality(
            datasets=("KDDCUP99", "CoverType", "PAMAP2"),
            algorithms=("EDMStream", "D-Stream", "DenStream", "DBSTREAM"),
            n_points=6000,
            checkpoint_every=2000,
            quality_window=300,
        ),
    )
    record(result)
    rows = result.tables["summary"]
    for dataset in {row["dataset"] for row in rows}:
        per_dataset = [r for r in rows if r["dataset"] == dataset]
        best = max(r["mean_cmm"] for r in per_dataset)
        edm = [r["mean_cmm"] for r in per_dataset if r["algorithm"] == "EDMStream"][0]
        assert edm >= best - 0.35, (
            f"EDMStream's CMM on {dataset} should be comparable to the best baseline"
        )
