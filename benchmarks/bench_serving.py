"""Serving extension — multi-process snapshot fan-out throughput.

Measures aggregate QPS as reader processes are added against one shared
snapshot and emits ``benchmarks/results/BENCH_serving.json`` for CI.
Environment knobs: ``BENCH_SERVING_POINTS``, ``BENCH_SERVING_WORKERS``,
``BENCH_SERVING_MEASURE_S``, ``BENCH_SERVING_MIN_SCALING``,
``BENCH_SERVING_MIN_QPS``.
"""

from _bench_utils import spec_bench

bench_serving = spec_bench("serve")
