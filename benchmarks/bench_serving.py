"""Serving tier — shared-memory snapshot fan-out under live ingestion.

``bench_serving`` stands up a full :class:`repro.serving.ServingCluster`
per worker count — one ingest process looping the SDS stream and
publishing every snapshot into shared memory, N query workers answering
``predict_many`` off the mapped arrays — and measures sustained QPS
(pipelined dispatch, one outstanding batch per worker), per-call p50/p99
latency through the asyncio micro-batching frontend, and snapshot
staleness.  The numbers land in ``benchmarks/results/BENCH_serving.json``
for the CI ``bench-serving`` smoke job.

Gates:

* **scaling** — when both the 1- and 4-worker rows are measured, the
  4-worker cluster must sustain ``BENCH_SERVING_MIN_SCALING`` (default
  2.5x) the single-worker QPS.  Query workers run niced below the ingest
  process, so this checks genuine fan-out, not starvation of the ingest;
* **floor** — every row must clear ``BENCH_SERVING_MIN_QPS`` (default
  20 000 queries/s; the shared-memory path answers hundreds of thousands
  on a quiet developer machine);
* **hygiene** — zero leaked ``/dev/shm`` segments per row after its
  cluster shuts down, and zero ``edmserv-*`` segments globally at exit.

Environment knobs: ``BENCH_SERVING_POINTS`` (looped stream length),
``BENCH_SERVING_WORKERS`` (comma-separated counts, default ``1,4,8``),
``BENCH_SERVING_MEASURE_S`` (measurement window per cluster).
"""

import os

from _bench_utils import record, record_json, run_once

from repro.harness import experiments
from repro.serving import list_segments


def bench_serving(benchmark):
    n_points = int(os.environ.get("BENCH_SERVING_POINTS", "4000"))
    workers = tuple(
        int(v) for v in os.environ.get("BENCH_SERVING_WORKERS", "1,4,8").split(",")
    )
    measure_s = float(os.environ.get("BENCH_SERVING_MEASURE_S", "2.0"))
    min_scaling = float(os.environ.get("BENCH_SERVING_MIN_SCALING", "2.5"))
    min_qps = float(os.environ.get("BENCH_SERVING_MIN_QPS", "20000"))

    result = run_once(
        benchmark,
        lambda: experiments.experiment_serving(
            n_points=n_points, worker_counts=workers, measure_s=measure_s
        ),
    )
    record(result)
    summary = result.tables["summary"]
    record_json(
        {
            "experiment": "serving",
            "n_points": result.metadata["n_points"],
            "query_batch": result.metadata["query_batch"],
            "measure_s": result.metadata["measure_s"],
            "min_scaling_required_at_4_workers": min_scaling,
            "min_qps_required": min_qps,
            "rows": summary,
        },
        "BENCH_serving.json",
    )

    for row in summary:
        assert row["leaked_segments"] == 0, (
            f"{row['workers']}-worker cluster left {row['leaked_segments']} "
            f"shared-memory segments behind after shutdown"
        )
        assert row["qps"] >= min_qps, (
            f"{row['workers']}-worker cluster sustained only {row['qps']:.0f} "
            f"queries/s (floor {min_qps:.0f})"
        )
        assert row["staleness_max_s"] is not None and row["staleness_max_s"] < 60.0, (
            f"{row['workers']}-worker cluster served implausibly stale snapshots "
            f"({row['staleness_max_s']}s old)"
        )

    by_workers = {row["workers"]: row for row in summary}
    if 1 in by_workers and 4 in by_workers:
        scaling = by_workers[4]["scaling_vs_1w"]
        assert scaling >= min_scaling, (
            f"4 query workers should sustain >= {min_scaling}x the single-worker "
            f"QPS (got {scaling}x: {by_workers[4]['qps']:.0f} vs "
            f"{by_workers[1]['qps']:.0f} queries/s)"
        )

    leaked = list_segments()
    assert leaked == [], f"leaked shared-memory segments at exit: {leaked}"
