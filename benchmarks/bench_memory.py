"""Bounded-memory tier — sketch-backed eviction under a hard byte cap.

``bench_memory`` runs every workload of
:func:`repro.harness.experiments.experiment_memory` twice — exact mode to
establish the peak cell-state footprint and reference quality, then capped
at ``BENCH_MEMORY_CAP_FRACTION`` of that peak — and records bytes/point,
eviction/revival traffic, and the CMM/purity degradation the sketch tier
trades for the bound.  The numbers land in
``benchmarks/results/BENCH_memory.json`` for the CI ``bench-memory`` smoke
job.

Gates:

* **cap** — every capped row's peak cell-state bytes must stay at or
  under its ``memory_cap_bytes`` (``under_cap``), i.e. bytes/point must
  not exceed the cap's share; transient enforcement failures surface as
  ``cap_overflows`` and fail the row too;
* **quality** — CMM and purity on the capped run may drop at most
  ``BENCH_MEMORY_MAX_DROP`` (default 10%) relative to the exact run on
  the same workload.

Environment knobs: ``BENCH_MEMORY_POINTS`` (stream length per workload,
default 50 000; the nightly-scale run uses 1 000 000),
``BENCH_MEMORY_DATASETS`` (comma-separated, default ``SDS,Drift,HDS-10d``),
``BENCH_MEMORY_CAP_FRACTION`` (default 0.5), ``BENCH_MEMORY_MAX_DROP``
(default 0.10).
"""

import os

from _bench_utils import record, record_json, run_once

from repro.harness import experiments


def bench_memory(benchmark):
    n_points = int(os.environ.get("BENCH_MEMORY_POINTS", "50000"))
    datasets = tuple(
        os.environ.get("BENCH_MEMORY_DATASETS", "SDS,Drift,HDS-10d").split(",")
    )
    cap_fraction = float(os.environ.get("BENCH_MEMORY_CAP_FRACTION", "0.5"))
    max_drop = float(os.environ.get("BENCH_MEMORY_MAX_DROP", "0.10"))
    eval_every = max(1000, min(10_000, n_points // 5))

    result = run_once(
        benchmark,
        lambda: experiments.experiment_memory(
            datasets=datasets,
            n_points=n_points,
            cap_fraction=cap_fraction,
            eval_every=eval_every,
        ),
    )
    record(result)
    summary = result.tables["summary"]
    record_json(
        {
            "experiment": "memory",
            "n_points": n_points,
            "cap_fraction": cap_fraction,
            "max_quality_drop": max_drop,
            "rows": summary,
        },
        "BENCH_memory.json",
    )

    capped = [row for row in summary if row["mode"] == "capped"]
    assert capped, "experiment_memory produced no capped rows"
    for row in capped:
        dataset = row["dataset"]
        assert row["under_cap"], (
            f"{dataset}: peak cell-state footprint {row['peak_cell_state_bytes']} "
            f"exceeded the cap {row['memory_cap_bytes']} "
            f"({row['bytes_per_point']} bytes/point)"
        )
        assert row["cap_overflows"] == 0, (
            f"{dataset}: {row['cap_overflows']} cap-enforcement failures while "
            f"bounded at {row['memory_cap_bytes']} bytes"
        )
        assert row["cmm_drop"] <= max_drop, (
            f"{dataset}: CMM dropped {row['cmm_drop']:.1%} under the cap "
            f"(budget {max_drop:.0%}; capped {row['cmm']} vs exact)"
        )
        assert row["purity_drop"] <= max_drop, (
            f"{dataset}: purity dropped {row['purity_drop']:.1%} under the cap "
            f"(budget {max_drop:.0%}; capped {row['purity']} vs exact)"
        )
        assert row["evictions"] > 0, (
            f"{dataset}: the capped run never evicted — the cap "
            f"{row['memory_cap_bytes']} did not constrain this workload"
        )
