"""Bounded-memory extension — sketch-backed cold cells under a byte cap.

Compares the capped model's footprint and quality against the uncapped
run and emits ``benchmarks/results/BENCH_memory.json`` for CI.
Environment knobs: ``BENCH_MEMORY_POINTS``, ``BENCH_MEMORY_DATASETS``,
``BENCH_MEMORY_CAP_FRACTION``, ``BENCH_MEMORY_MAX_DROP``.
"""

from _bench_utils import spec_bench

bench_memory = spec_bench("memory")
