"""Ablation — CF-Tree (BIRCH) vs DP-Tree (EDMStream) under concept drift.

Shape that must hold (Section 7's CF-Tree vs DP-Tree discussion): BIRCH has
no decay model, so after an abrupt drift its stale summaries keep pulling
points into outdated structure; EDMStream's decayed DP-Tree tracks the new
concept at least as well after the drift.
"""

from _bench_utils import record, run_once

from repro.harness import ablations


def bench_ablation_cftree(benchmark):
    result = run_once(
        benchmark,
        lambda: ablations.experiment_cftree_vs_dptree(n_points=6000),
    )
    record(result)
    rows = {row["algorithm"]: row for row in result.tables["summary"]}
    assert set(rows) == {"EDMStream", "BIRCH"}
    assert all(0.0 <= row["mean_cmm"] <= 1.0 for row in rows.values())
    assert rows["EDMStream"]["post_drift_cmm"] >= rows["BIRCH"]["post_drift_cmm"] - 0.05, (
        "the decayed DP-Tree should track the post-drift concept at least as "
        "well as the un-decayed CF-Tree"
    )
    assert rows["EDMStream"]["final_clusters"] >= 1
