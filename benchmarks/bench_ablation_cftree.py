"""Ablation — BIRCH (CF-Tree, no decay) vs EDMStream (DP-Tree) under drift.

Gate: the decayed DP-Tree recovers from the drift while the CF-Tree's
stale structure drags its quality down.
"""

from _bench_utils import spec_bench

bench_ablation_cftree = spec_bench("ablation_cftree")
