"""Figure 15 / Table 4 — dynamic τ vs static τ on the SDS stream.

The shape that must hold: while the two density mountains are approaching
each other (the first seconds of SDS) the dynamically tuned τ keeps
reporting two clusters, whereas the τ frozen at its initial value collapses
to a single cluster earlier.
"""

from _bench_utils import record, run_once

from repro.harness import scenarios


def bench_fig15_adaptive_tau(benchmark):
    result = run_once(
        benchmark,
        lambda: scenarios.experiment_adaptive_tau(
            n_points=20000, rate=1000.0, static_tau=5.0, seconds_reported=10
        ),
    )
    record(result)
    rows = result.tables["table4"]
    dynamic_total = sum(row["dynamic tau"] for row in rows)
    static_total = sum(row["static tau"] for row in rows)
    assert dynamic_total > static_total, (
        "the adaptive tau should keep tracking two clusters longer than the static tau"
    )
    assert any(row["dynamic tau"] == 2 and row["static tau"] == 1 for row in rows)
