"""Figure 15 — adaptive vs static dependency-distance threshold tau.

Gate: the adaptive threshold tracks the drifting stream where the static
one fragments or over-merges.
"""

from _bench_utils import spec_bench

bench_fig15_adaptive_tau = spec_bench("fig15")
