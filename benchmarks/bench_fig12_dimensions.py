"""Figure 12 — response time as the dimensionality grows (HDS streams).

Gate: EDMStream stays ahead of the baselines at every dimensionality.
"""

from _bench_utils import spec_bench

bench_fig12_dimensions = spec_bench("fig12")
