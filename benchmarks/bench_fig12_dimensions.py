"""Figure 12 — response time while varying the data dimensionality (HDS)."""

from _bench_utils import record, run_once

from repro.harness import experiments


def bench_fig12_dimensions(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_dimensions(
            dimensions=(10, 30, 100, 300),
            algorithms=("EDMStream", "D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
            n_points=3000,
            checkpoint_every=1000,
        ),
    )
    record(result)
    series = result.series["EDMStream"]
    # Response time grows with the dimensionality (more per-distance work).
    assert series.y[-1] >= series.y[0]
    assert all(y > 0 for y in series.y)
