"""Figure 8 / Table 3 — topic-level cluster evolution on the news stream."""

from _bench_utils import record, run_once

from repro.harness import scenarios


def bench_fig08_news_evolution(benchmark):
    result = run_once(benchmark, lambda: scenarios.experiment_news_evolution(n_points=6000))
    record(result)
    counts = result.tables["event_counts"][0]
    observed_types = {row["type"] for row in result.tables["observed_events"]}
    # The scripted merges and splits of Table 3 must surface as events.
    assert counts["merge"] + counts["split"] >= 2
    assert "merge" in observed_types or "split" in observed_types
    assert result.metadata["n_clusters_final"] >= 2
