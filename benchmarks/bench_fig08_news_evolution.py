"""Figure 8 — topic evolution on the news-stream surrogate.

Gate: the emerging topic is detected, and the dying topic disappears from
the clustering within the scripted window.
"""

from _bench_utils import spec_bench

bench_fig08_news_evolution = spec_bench("fig8")
