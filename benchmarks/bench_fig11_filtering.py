"""Figure 11 — ablation of the dependency-filtering optimisations.

Gate: each filtering stage reduces the dependency-search workload, and the
fully filtered configuration matches the unfiltered clustering.
"""

from _bench_utils import spec_bench

bench_fig11_filtering = spec_bench("fig11")
