"""Figure 11 — accumulated dependency-update time: wf vs df vs df+tif.

The shape that must hold: enabling the density filter (Theorem 1) cuts the
accumulated update time and the number of seed-distance computations, and
adding the triangle-inequality filter (Theorem 2) cuts them further.
"""

from _bench_utils import record, run_once

from repro.harness import experiments


def bench_fig11_filtering(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_filtering(
            datasets=("KDDCUP99", "CoverType", "PAMAP2"),
            n_points=8000,
            checkpoint_every=2000,
        ),
    )
    record(result)
    for dataset in ("KDDCUP99", "CoverType", "PAMAP2"):
        rows = {r["variant"]: r for r in result.tables["summary"] if r["dataset"] == dataset}
        assert rows["df"]["distance_computations"] <= rows["wf"]["distance_computations"]
        assert rows["df+tif"]["distance_computations"] <= rows["df"]["distance_computations"]
        assert rows["df+tif"]["update_time_ms"] <= rows["wf"]["update_time_ms"] * 1.1
