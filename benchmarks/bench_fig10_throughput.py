"""Figure 10 — throughput of EDMStream vs the baselines, plus batch ingestion.

``bench_fig10_throughput`` gates the real-time throughput shape of the
figure; ``bench_fig10_batch_ingestion`` extends it with the micro-batch
``learn_many`` axis and emits ``benchmarks/results/BENCH_throughput.json``
for CI.  Environment knobs: ``BENCH_FIG10_POINTS``, ``BENCH_FIG10_DATASETS``,
``BENCH_BATCH_MIN_SPEEDUP``, ``BENCH_BATCH_NOT_SLOWER_FLOOR``.
"""

from _bench_utils import spec_bench

bench_fig10_throughput = spec_bench("fig10")
bench_fig10_batch_ingestion = spec_bench("fig10_batch")
