"""Figure 10 — throughput (points per second) of EDMStream vs the baselines.

The paper's stress test removes the arrival-rate limit but still requires an
up-to-date clustering, so the headline number is the *real-time* throughput
(reciprocal of the Figure 9 response time); the amortised variant is printed
alongside.  The shape that must hold mirrors Figure 9: EDMStream sustains a
higher real-time throughput than every two-phase baseline, with the same
DenStream caveat on the small CoverType/PAMAP2 surrogates (see
bench_fig09_response_time.py and EXPERIMENTS.md).
"""

from _bench_utils import record, run_once

from repro.harness import experiments

#: Competitors EDMStream must beat per dataset (DenStream completes on our
#: small surrogates, unlike at the paper's scale, so it is asserted only on
#: KDDCUP99 — the dataset where the paper also shows it surviving at 1 K/s).
PAPER_SERIES = {
    "KDDCUP99": ("D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
    "CoverType": ("D-Stream", "DBSTREAM", "MR-Stream"),
    "PAMAP2": ("D-Stream", "DBSTREAM", "MR-Stream"),
}


def bench_fig10_throughput(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_throughput(
            datasets=("KDDCUP99", "CoverType", "PAMAP2"),
            algorithms=("EDMStream", "D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
            n_points=6000,
            checkpoint_every=1500,
        ),
    )
    record(result)
    summary = result.tables["summary"]
    for dataset, competitors in PAPER_SERIES.items():
        edm = next(
            row["mean_throughput"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] == "EDMStream"
        )
        assert edm > 0
        best_other = max(
            row["mean_throughput"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] in competitors
        )
        assert edm > best_other, (
            f"EDMStream should sustain a higher real-time throughput than the "
            f"competitors on {dataset} (EDMStream {edm} pt/s vs best {best_other} pt/s)"
        )
