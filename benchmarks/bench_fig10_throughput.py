"""Figure 10 — throughput (points per second) of EDMStream vs the baselines.

The paper's stress test removes the arrival-rate limit but still requires an
up-to-date clustering, so the headline number is the *real-time* throughput
(reciprocal of the Figure 9 response time); the amortised variant is printed
alongside.  The shape that must hold mirrors Figure 9: EDMStream sustains a
higher real-time throughput than every two-phase baseline, with the same
DenStream caveat on the small CoverType/PAMAP2 surrogates (see
bench_fig09_response_time.py and EXPERIMENTS.md).

``bench_fig10_batch_ingestion`` extends the figure with the micro-batch
ingestion axis: the same streams ingested through
``learn_many(batch_size=N)`` versus the sequential per-point loop, with the
numbers emitted to ``benchmarks/results/BENCH_throughput.json`` for the CI
benchmark-smoke job.  Environment knobs (used by CI to run a reduced
workload): ``BENCH_FIG10_POINTS`` (stream length), ``BENCH_FIG10_DATASETS``
(comma-separated), ``BENCH_BATCH_MIN_SPEEDUP`` (required speedup on the
synthetic workloads at batch size 256).
"""

import os

from _bench_utils import record, record_json, run_once

from repro.harness import experiments

#: Competitors EDMStream must beat per dataset (DenStream completes on our
#: small surrogates, unlike at the paper's scale, so it is asserted only on
#: KDDCUP99 — the dataset where the paper also shows it surviving at 1 K/s).
PAPER_SERIES = {
    "KDDCUP99": ("D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
    "CoverType": ("D-Stream", "DBSTREAM", "MR-Stream"),
    "PAMAP2": ("D-Stream", "DBSTREAM", "MR-Stream"),
}


def bench_fig10_throughput(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_throughput(
            datasets=("KDDCUP99", "CoverType", "PAMAP2"),
            algorithms=("EDMStream", "D-Stream", "DenStream", "DBSTREAM", "MR-Stream"),
            n_points=6000,
            checkpoint_every=1500,
        ),
    )
    record(result)
    summary = result.tables["summary"]
    for dataset, competitors in PAPER_SERIES.items():
        edm = next(
            row["mean_throughput"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] == "EDMStream"
        )
        assert edm > 0
        best_other = max(
            row["mean_throughput"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] in competitors
        )
        assert edm > best_other, (
            f"EDMStream should sustain a higher real-time throughput than the "
            f"competitors on {dataset} (EDMStream {edm} pt/s vs best {best_other} pt/s)"
        )


def bench_fig10_batch_ingestion(benchmark):
    """Micro-batch vs sequential ingestion throughput, with a JSON artifact.

    Gates: at batch size 256 the batch path must never be slower than the
    sequential path, and on the paper's synthetic workloads (SDS, HDS) it
    must reach ``BENCH_BATCH_MIN_SPEEDUP`` (default 6×, reflecting the
    structure-of-arrays batch engine; the CI smoke job lowers this to 2×
    because its runners are small and noisy).  The real-dataset surrogates
    are dominated by the irreducible nearest-seed scan that both paths
    share, so they gate only on "not slower".
    """
    n_points = int(os.environ.get("BENCH_FIG10_POINTS", "16000"))
    min_speedup = float(os.environ.get("BENCH_BATCH_MIN_SPEEDUP", "6.0"))
    # "Not slower than sequential" floor.  The default sits slightly below
    # 1.0 because the gate compares two single wall-clock runs: on the
    # surrogate datasets (speedup ~2x) the margin is comfortable, but a
    # floor of exactly 1.0 would flake on timing noise alone whenever the
    # machine is contended.  Raise it explicitly for strict runs.
    not_slower_floor = float(os.environ.get("BENCH_BATCH_NOT_SLOWER_FLOOR", "0.9"))
    datasets_env = os.environ.get("BENCH_FIG10_DATASETS")
    kwargs = {"n_points": n_points}
    if datasets_env:
        kwargs["datasets"] = tuple(name.strip() for name in datasets_env.split(","))

    result = run_once(
        benchmark, lambda: experiments.experiment_batch_throughput(**kwargs)
    )
    record(result)
    summary = result.tables["summary"]
    record_json(
        {
            "experiment": "fig10_batch_ingestion",
            "n_points": result.metadata["n_points"],
            "batch_sizes": result.metadata["batch_sizes"],
            "min_speedup_required_on_synthetic": min_speedup,
            "rows": summary,
        },
        "BENCH_throughput.json",
    )

    by_dataset = {}
    for row in summary:
        by_dataset.setdefault(row["dataset"], {})[row["mode"]] = row
    for dataset, modes in by_dataset.items():
        batch = modes.get("batch-256")
        if batch is None:
            continue
        speedup = batch["speedup_vs_sequential"]
        assert speedup >= not_slower_floor, (
            f"batch ingestion must not be slower than sequential on {dataset} "
            f"(got {speedup}x at batch_size=256, floor {not_slower_floor}x)"
        )
        if batch["synthetic"]:
            assert speedup >= min_speedup, (
                f"batch ingestion should reach {min_speedup}x over sequential on "
                f"the synthetic workload {dataset} (got {speedup}x at batch_size=256)"
            )
