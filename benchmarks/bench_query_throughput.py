"""Serving extension — snapshot query throughput of the ingest/serve split.

``bench_query_throughput`` measures how fast the snapshot API answers
"which cluster is this point in?" on the SDS workload: the per-point
``predict_one`` loop versus the vectorised ``ClusterSnapshot.predict_many``
at query batch sizes {1, 64, 4096}.  The numbers are emitted to
``benchmarks/results/BENCH_query.json`` for the CI benchmark-smoke job.

Gates:

* ``predict_many`` at batch sizes > 1 must never be slower than the
  per-point loop (``BENCH_QUERY_NOT_SLOWER_FLOOR``, default 1.0);
* at the largest batch size it must reach ``BENCH_QUERY_MIN_SPEEDUP``
  (default 5x — the ISSUE 2 acceptance bar; comfortably exceeded on
  developer machines).

Batch size 1 is the degenerate case — one kernel call per query does the
same work as the loop plus chunking overhead — so it is reported for the
curve but not gated.  Environment knobs: ``BENCH_QUERY_POINTS`` (ingested
stream length), ``BENCH_QUERY_QUERIES`` (query-set size).
"""

import os

from _bench_utils import record, record_json, run_once

from repro.harness import experiments


def bench_query_throughput(benchmark):
    n_points = int(os.environ.get("BENCH_QUERY_POINTS", "16000"))
    n_queries = int(os.environ.get("BENCH_QUERY_QUERIES", "10000"))
    min_speedup = float(os.environ.get("BENCH_QUERY_MIN_SPEEDUP", "5.0"))
    not_slower_floor = float(os.environ.get("BENCH_QUERY_NOT_SLOWER_FLOOR", "1.0"))

    result = run_once(
        benchmark,
        lambda: experiments.experiment_query_throughput(
            n_points=n_points, n_queries=n_queries, batch_sizes=(1, 64, 4096)
        ),
    )
    record(result)
    summary = result.tables["summary"]
    record_json(
        {
            "experiment": "query_throughput",
            "n_points": result.metadata["n_points"],
            "n_queries": result.metadata["n_queries"],
            "snapshot": result.metadata["snapshot"],
            "min_speedup_required_at_largest_batch": min_speedup,
            "rows": summary,
        },
        "BENCH_query.json",
    )

    gated = [row for row in summary if row["batch_size"] > 1]
    assert gated, "no gated predict_many rows in the summary"
    for row in gated:
        assert row["speedup_vs_loop"] >= not_slower_floor, (
            f"snapshot predict_many must not be slower than the per-point loop "
            f"(got {row['speedup_vs_loop']}x at batch size {row['batch_size']}, "
            f"floor {not_slower_floor}x)"
        )
    largest = max(gated, key=lambda row: row["batch_size"])
    assert largest["speedup_vs_loop"] >= min_speedup, (
        f"snapshot predict_many should reach {min_speedup}x over the per-point "
        f"loop at batch size {largest['batch_size']} "
        f"(got {largest['speedup_vs_loop']}x)"
    )
