"""Serving extension — snapshot query throughput of the ingest/serve split.

Measures ``predict_one`` vs the vectorised ``ClusterSnapshot.predict_many``
and emits ``benchmarks/results/BENCH_query.json`` for CI.  Environment
knobs: ``BENCH_QUERY_POINTS``, ``BENCH_QUERY_QUERIES``,
``BENCH_QUERY_MIN_SPEEDUP``, ``BENCH_QUERY_NOT_SLOWER_FLOOR``.
"""

from _bench_utils import spec_bench

bench_query_throughput = spec_bench("query")
