"""Figure 17 — effect of the cluster-cell radius r (quality vs response time).

The shape that must hold: a smaller r produces more, finer-grained
cluster-cells (higher cost per point), while a larger r is cheaper; quality
stays in a reasonable band across the 0.5%-2% percentile range the paper
explores.
"""

from _bench_utils import record, run_once

from repro.harness import experiments


def bench_fig17_radius(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_radius(
            percentiles=(0.5, 1.0, 1.5, 2.0),
            dataset="PAMAP2",
            n_points=6000,
            checkpoint_every=2000,
            quality_window=300,
        ),
    )
    record(result)
    rows = result.tables["summary"]
    assert rows[0]["radius"] <= rows[-1]["radius"]
    # Finer cells => more cluster-cells overall and a higher per-point cost.
    # (The number of *active* cells is not monotone in r: finer cells spread
    # the same density mass over more cells, so fewer of them clear the
    # radius-independent density threshold.)
    assert rows[0]["total_cells"] >= rows[-1]["total_cells"]
    # Response time is reported in the series but not asserted: the PAMAP2
    # surrogate's pairwise-distance percentiles are close together, so the
    # per-point cost differences are within measurement noise at this scale.
    assert all(row["mean_response_us"] > 0 for row in rows)
    assert all(0.0 <= row["mean_cmm"] <= 1.0 for row in rows)
