"""Figure 17 — sensitivity to the cluster-cell radius percentile.

Gate: quality is stable across the paper's 0.5%-2% radius window.
"""

from _bench_utils import spec_bench

bench_fig17_radius = spec_bench("fig17")
