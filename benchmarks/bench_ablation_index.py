"""Ablation — the nearest-seed index structures behind cell lookup.

Gate: every index variant returns the same assignments; the accelerated
variants do less distance work than the linear scan.
"""

from _bench_utils import spec_bench

bench_ablation_index = spec_bench("ablation_index")
