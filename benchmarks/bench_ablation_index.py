"""Ablation — nearest-seed index choice (brute force / uniform grid / KD-tree).

Shape that must hold: all three indexes return the same nearest seeds
(agreement 1.0 up to distance ties), and at the largest seed count at least
one spatial index answers queries no slower than the brute-force scan.
"""

from _bench_utils import record, run_once

from repro.harness import ablations


def bench_ablation_index(benchmark):
    result = run_once(
        benchmark,
        lambda: ablations.experiment_index_ablation(
            seed_counts=(100, 500, 2000), n_queries=2000
        ),
    )
    record(result)
    rows = result.tables["summary"]
    assert all(row["agreement_with_brute_force"] > 0.99 for row in rows)
    largest = max(row["seeds"] for row in rows)
    at_largest = {row["index"]: row["query_time_us"] for row in rows if row["seeds"] == largest}
    spatial_best = min(at_largest["Grid"], at_largest["KDTree"])
    assert spatial_best <= at_largest["BruteForce"] * 1.5, (
        "at the largest seed count a spatial index should be competitive with "
        f"the linear scan (spatial {spatial_best} µs vs brute {at_largest['BruteForce']} µs)"
    )
