"""Observability extension — telemetry overhead on the batch ingest path.

Interleaves telemetry-off and telemetry-on ingestion of the same SDS
stream, asserts the clusterings are identical, and emits
``benchmarks/results/BENCH_obs.json`` with the overhead ratio and the
instrumented run's phase breakdown for CI.  Environment knobs:
``BENCH_OBS_POINTS``, ``BENCH_OBS_TRIALS``, ``BENCH_OBS_MAX_OVERHEAD``.
"""

from _bench_utils import spec_bench

bench_obs = spec_bench("obs")
