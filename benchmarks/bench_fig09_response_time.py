"""Figure 9 — response time vs stream length (EDMStream vs the baselines).

The paper reports 7-23 µs per update for EDMStream and a 7-15x advantage
over the best competitor.  Absolute numbers differ in pure Python; the shape
that must hold is that EDMStream's response time is substantially lower than
every baseline *the paper plots for that dataset*: Figure 9a (KDDCUP99)
includes DenStream, while Figures 9b/9c (CoverType, PAMAP2) do not because
DenStream runs out of memory there at the paper's scale.  Our surrogate
streams are far smaller, so DenStream completes on them — we still run it
everywhere for completeness, but assert only against the paper's series.
"""

from _bench_utils import record, run_once

from repro.harness import experiments

#: Competitors plotted in each panel of Figure 9 (besides EDMStream).
PAPER_SERIES = {
    "KDDCUP99": ("D-Stream", "DenStream", "DBSTREAM"),
    "CoverType": ("D-Stream", "DBSTREAM"),
    "PAMAP2": ("D-Stream", "DBSTREAM"),
}


def bench_fig09_response_time(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_response_time(
            datasets=("KDDCUP99", "CoverType", "PAMAP2"),
            algorithms=("EDMStream", "D-Stream", "DenStream", "DBSTREAM"),
            n_points=6000,
            checkpoint_every=1500,
        ),
    )
    record(result)
    summary = result.tables["summary"]
    for dataset, competitors in PAPER_SERIES.items():
        edm = next(
            row["mean_response_us"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] == "EDMStream"
        )
        best_other = min(
            row["mean_response_us"]
            for row in summary
            if row["dataset"] == dataset and row["algorithm"] in competitors
        )
        assert edm < best_other, (
            f"EDMStream should respond faster than every competitor the paper "
            f"plots on {dataset} (EDMStream {edm} µs vs best competitor {best_other} µs)"
        )
