"""Figure 9 — per-point response time of EDMStream vs the baselines.

Gate: EDMStream answers faster than every two-phase baseline on each
dataset (with the DenStream caveat on the small surrogates — see
EXPERIMENTS.md).
"""

from _bench_utils import spec_bench

bench_fig09_response_time = spec_bench("fig9")
