"""Table 2 — the dataset inventory (paper values + surrogate properties)."""

from _bench_utils import record, run_once

from repro.harness import experiments


def bench_table2_datasets(benchmark):
    result = run_once(benchmark, lambda: experiments.experiment_table2(surrogate_points=2000))
    record(result)
    assert len(result.tables["paper"]) == 10
    assert len(result.tables["surrogates"]) == 5
