"""Table 2 — the dataset inventory (paper values + surrogate properties).

Gate: every paper dataset has a generated surrogate with the right
dimensionality and a non-trivial class structure.
"""

from _bench_utils import spec_bench

bench_table2_datasets = spec_bench("table2")
