"""Ablation — the active-threshold multiplier β (Section 4.3).

Shape that must hold: a larger β raises the active-density threshold, so the
number of active cluster-cells shrinks monotonically (the paper: "The larger
the value of β, the less number of active cluster-cells"), while quality
stays usable for the paper's own setting (β = 0.0021).
"""

from _bench_utils import record, run_once

from repro.harness import ablations


def bench_ablation_beta(benchmark):
    result = run_once(
        benchmark,
        lambda: ablations.experiment_beta_ablation(
            n_points=6000, betas=(0.0005, 0.0021, 0.01, 0.05)
        ),
    )
    record(result)
    rows = result.tables["summary"]
    actives = [row["active_cells"] for row in rows]
    thresholds = [row["active_threshold"] for row in rows]
    assert thresholds == sorted(thresholds), "threshold must rise with beta"
    assert actives[0] >= actives[-1], "larger beta must not produce more active cells"
    paper_row = next(row for row in rows if row["beta"] == 0.0021)
    assert paper_row["clusters"] >= 1
    assert 0.0 <= paper_row["mean_cmm"] <= 1.0
