"""Ablation — the active-threshold multiplier beta (Section 4.3).

Gate: larger beta shrinks the active cell set and grows the reservoir,
with quality degrading only at the extreme settings.
"""

from _bench_utils import spec_bench

bench_ablation_beta = spec_bench("ablation_beta")
