"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper through the
corresponding :class:`~repro.harness.registry.ExperimentSpec` benchmark
contract: :func:`spec_bench` resolves the spec's parameters (honouring the
``BENCH_*`` environment knobs), runs the driver, records the rendered result
under ``benchmarks/results/<experiment id>.txt``, emits the spec's
``BENCH_*.json`` artifact when it has one, and enforces the registry gate.
The pytest-benchmark fixture times the run, so ``pytest benchmarks/
--benchmark-only`` reports one wall-clock figure per experiment alongside
the recorded tables.  The same contract powers ``python -m repro fleet run``,
so a bench script here and a fleet run produce identical artifacts.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable, Dict

from repro.harness import fleet
from repro.harness.results import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def spec_bench(experiment_id: str) -> Callable[[Any], None]:
    """Build a pytest-benchmark entry point for one registered experiment.

    The returned function runs the experiment exactly once through
    :func:`repro.harness.fleet.run_bench` — the same parameter resolution,
    artifact emission and gate enforcement the fleet runner applies — so
    the bench scripts stay thin wrappers over the registry contract.
    """

    def bench(benchmark) -> None:
        run_once(
            benchmark,
            lambda: fleet.run_bench(
                experiment_id, reports_dir=RESULTS_DIR, artifacts_dir=RESULTS_DIR
            ),
        )

    bench.__name__ = f"bench_{experiment_id}"
    bench.__qualname__ = bench.__name__
    bench.__doc__ = f"Registry-contract benchmark for experiment {experiment_id!r}."
    return bench


def record(result: ExperimentResult) -> ExperimentResult:
    """Write the experiment's text report to benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.to_text()
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return result


def record_json(payload: Dict[str, Any], filename: str) -> pathlib.Path:
    """Write a machine-readable benchmark artifact to benchmarks/results/.

    Used by the CI benchmark-smoke job, which uploads the file as a build
    artifact and gates on the numbers inside it.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
