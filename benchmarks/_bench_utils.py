"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper through the
corresponding driver in :mod:`repro.harness`, records the rendered result
under ``benchmarks/results/<experiment id>.txt`` and prints it (visible with
``pytest -s``).  The pytest-benchmark fixture times the driver itself, so
``pytest benchmarks/ --benchmark-only`` reports one wall-clock figure per
experiment alongside the recorded tables.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict

from repro.harness.results import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(result: ExperimentResult) -> ExperimentResult:
    """Write the experiment's text report to benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.to_text()
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return result


def record_json(payload: Dict[str, Any], filename: str) -> pathlib.Path:
    """Write a machine-readable benchmark artifact to benchmarks/results/.

    Used by the CI benchmark-smoke job, which uploads the file as a build
    artifact and gates on the numbers inside it.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
