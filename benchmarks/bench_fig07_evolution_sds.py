"""Figure 7 — cluster evolution on the SDS script (emerge/merge/split/disappear).

Gate: the DP-Tree evolution log recovers the scripted sequence of events in
order, within the paper's tolerance on event times.
"""

from _bench_utils import spec_bench

bench_fig07_evolution_sds = spec_bench("fig7")
