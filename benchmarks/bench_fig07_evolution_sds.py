"""Figures 6-7 — cluster evolution activities on the SDS stream.

The paper's timeline: two clusters merge at ~9 s, a new cluster emerges at
~12 s, the merged cluster disappears at ~14 s and the emergent cluster splits
at ~14 s, leaving two clusters that drift apart until 20 s.
"""

from _bench_utils import record, run_once

from repro.harness import scenarios


def bench_fig07_evolution_sds(benchmark):
    result = run_once(
        benchmark, lambda: scenarios.experiment_evolution_sds(n_points=20000, rate=1000.0)
    )
    record(result)
    counts = result.tables["event_counts"][0]
    # The shape that must hold: all four evolution types are observed.
    assert counts["merge"] >= 1, "the two initial clusters should merge"
    assert counts["emerge"] >= 3, "a new cluster should emerge around 12 s"
    assert counts["disappear"] >= 1, "the merged cluster should disappear"
    assert counts["split"] >= 1, "the emergent cluster should split"
    series = result.series["clusters_over_time"]
    assert max(series.y) >= 2 and min(series.y) >= 1
