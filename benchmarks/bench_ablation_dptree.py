"""Ablation — incremental DP-Tree maintenance vs periodic re-clustering.

Gate: EDMStream's amortised cost beats the Periodic-DP baseline while
producing the same clustering at the checkpoints.
"""

from _bench_utils import spec_bench

bench_ablation_dptree = spec_bench("ablation")
