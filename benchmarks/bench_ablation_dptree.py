"""Ablation — incremental DP-Tree maintenance vs periodic batch DP.

Both algorithms share the cluster-cell summarisation; the difference is that
EDMStream maintains the dependency structure incrementally (with the
Theorem 1/2 filters) while Periodic-DP recomputes the full Density-Peaks
structure at every clustering request.  EDMStream must answer a cluster
update substantially faster.
"""

from _bench_utils import record, run_once

from repro.harness import experiments


def bench_ablation_dptree(benchmark):
    result = run_once(
        benchmark,
        lambda: experiments.experiment_dptree_ablation(
            dataset="CoverType", n_points=6000, checkpoint_every=1500
        ),
    )
    record(result)
    rows = {row["algorithm"]: row for row in result.tables["summary"]}
    assert rows["EDMStream"]["mean_response_us"] < rows["Periodic-DP"]["mean_response_us"]
