"""Ablation — the decay model is what lets EDMStream follow a drifting stream.

Shape that must hold: after an abrupt drift, the decayed variants recover a
good clustering of the *new* concept, whereas the "no decay" variant (which
turns EDMStream into a dynamic — not stream — clusterer, Section 7) keeps
the stale structure around and scores no better than the decayed ones.
"""

from _bench_utils import record, run_once

from repro.harness import ablations


def bench_ablation_decay(benchmark):
    result = run_once(
        benchmark,
        lambda: ablations.experiment_decay_ablation(
            n_points=6000, half_lives=(0.5, 2.0, 8.0, 1e9)
        ),
    )
    record(result)
    rows = {row["variant"]: row for row in result.tables["summary"]}
    assert all(0.0 <= row["mean_cmm"] <= 1.0 for row in rows.values())
    decayed_best = max(
        row["post_drift_cmm"] for name, row in rows.items() if name != "no decay"
    )
    assert decayed_best >= rows["no decay"]["post_drift_cmm"] - 0.05, (
        "a decayed configuration should track the post-drift concept at least "
        "as well as the no-decay configuration"
    )
