"""Ablation — decay half-life vs recovery from an abrupt drift.

Gate: moderate decay recovers quality after the drift; "no decay"
(the dynamic-clustering setting) does not.
"""

from _bench_utils import spec_bench

bench_ablation_decay = spec_bench("ablation_decay")
