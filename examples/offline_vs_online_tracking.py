#!/usr/bin/env python3
"""Online DP-Tree evolution tracking vs offline MONIC / MEC.

The paper argues (Sections 1 and 7) that existing stream clusterers need an
*additional offline procedure* — MONIC or MEC — to detect cluster evolution,
whereas EDMStream gets the evolution log for free from its DP-Tree updates.
This demo runs both on the same SDS stream:

* EDMStream's native evolution tracker records events online;
* a :class:`~repro.tracking.SnapshotRecorder` takes an object-level snapshot
  of the same model once per second and feeds it to MONIC and MEC.

It then prints the per-type event counts, the agreement of the offline logs
with the online log, and the extra wall-clock time the offline pass costs.

Run with::

    python examples/offline_vs_online_tracking.py
"""

from __future__ import annotations

from repro.harness import format_table
from repro.harness.ablations import experiment_tracking_comparison


def main() -> None:
    result = experiment_tracking_comparison(
        n_points=15000, rate=1000.0, snapshot_every=1.0, window_size=600
    )

    print("evolution events detected per tracker")
    print(format_table(result.tables["event_counts"]))

    print("\nagreement of the offline trackers with the online log "
          "(per event type, 3 s time tolerance)")
    print(format_table(result.tables["agreement_vs_online"]))

    print("\nwall-clock cost")
    print(format_table(result.tables["cost"]))

    print(
        "\nThe offline trackers recover a similar story, but only at snapshot "
        "granularity and at the cost of re-classifying the whole window of "
        "recent points every second — overhead EDMStream's online tracking "
        "avoids entirely."
    )


if __name__ == "__main__":
    main()
