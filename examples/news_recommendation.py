#!/usr/bin/env python3
"""News recommendation use case (Section 6.2.2, Figure 8, Table 3).

A news recommender wants to suggest articles from the same topical cluster
as the ones a user just read — and topics evolve: they emerge, merge, split
and die.  This example runs EDMStream with the Jaccard distance over a
scripted short-text news stream whose topic lifecycle mirrors the paper's
NADS timeline (Chromecast merging into wearables, smartwatch splitting off,
Apple-vs-Samsung splitting from the iPhone 5c coverage, Microsoft mobile
coverage merging into the Nokia acquisition).

Run with::

    python examples/news_recommendation.py
"""

from __future__ import annotations

from collections import Counter

from repro import EDMStream
from repro.core import EvolutionType
from repro.distance import TokenSetPoint
from repro.streams import NewsStreamGenerator


def main() -> None:
    generator = NewsStreamGenerator(n_points=8000, seed=17)
    stream = generator.generate()
    rate = stream.rate

    model = EDMStream(
        radius=0.4,                 # Jaccard distance threshold for one cluster-cell
        metric="jaccard",
        beta=0.0021,
        decay_a=0.998,
        decay_lambda=rate,          # per-headline forgetting
        stream_rate=rate,
    )

    for point in stream:
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)

    seconds_per_day = (len(stream) / rate) / generator.days

    print("expected topic evolution (scripted into the stream)")
    for event in generator.expected_events():
        print(f"  day {event['day']:>4.1f}  {event['type']:<6s} {event['topics']}")

    print("\nobserved cluster evolution")
    for event in model.evolution.events:
        if event.event_type in (EvolutionType.ADJUST, EvolutionType.SURVIVE):
            continue
        day = event.time / seconds_per_day
        print(f"  day {day:>4.1f}  {event.event_type.value:<9s} {event.description}")

    # Show what a recommendation would look like: publish a serving snapshot
    # and answer the query entirely from it — the recommender never touches
    # the live model, so ingestion can continue concurrently.
    snapshot = model.request_clustering()
    last_article = stream.points[-1]
    cluster = snapshot.predict_one(last_article.values)
    print(f"\nuser just read: {last_article.values.text!r}")
    if cluster == snapshot.outlier_label:
        print("  -> no active cluster covers this article (too niche right now)")
        return
    member_positions = {int(cid): i for i, cid in enumerate(snapshot.cell_ids)}
    token_counter: Counter = Counter()
    for cell_id in snapshot.clusters().get(cluster, []):
        seed: TokenSetPoint = snapshot.seed_objects[member_positions[cell_id]]
        token_counter.update(seed.tokens)
    top_tokens = ", ".join(token for token, _ in token_counter.most_common(6))
    print(
        f"  -> recommend more articles from cluster {cluster} "
        f"(stable topic id {snapshot.stable_label_of(cluster)}, "
        f"topic tags: {top_tokens})"
    )


if __name__ == "__main__":
    main()
