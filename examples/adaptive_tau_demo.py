#!/usr/bin/env python3
"""Adaptive τ demo (Section 5, Figure 15, Table 4).

τ controls the cluster-separation granularity: dependency links longer than
τ cut the DP-Tree into separate clusters.  A fixed τ chosen at the start of
the stream goes stale as the data distribution evolves; EDMStream instead
learns the user's granularity preference (α) from the initial decision-graph
choice and re-optimises τ continuously.

This demo runs the SDS stream twice — once with the adaptive τ and once with
the τ frozen at its initial value — and prints the number of clusters per
second side by side, plus the evolution of the adaptive τ value itself.

Run with::

    python examples/adaptive_tau_demo.py
"""

from __future__ import annotations

from repro.harness import format_table
from repro.harness.scenarios import experiment_adaptive_tau


def main() -> None:
    result = experiment_adaptive_tau(n_points=20000, rate=1000.0, static_tau=5.0)

    print("number of clusters over the first 10 seconds (Table 4)")
    print(format_table(result.tables["table4"]))

    print(f"\nlearned alpha = {result.metadata['alpha']:.2f}, "
          f"static tau = {result.metadata['static_tau']}")

    print("\nadaptive tau value over time")
    tau_series = result.series["tau_over_time"]
    rows = [
        {"time (s)": round(x, 1), "tau": round(y, 3)}
        for x, y in zip(tau_series.x, tau_series.y)
    ]
    print(format_table(rows[:15]))

    dynamic = result.series["dynamic_tau"]
    static = result.series["static_tau"]
    differing = [
        int(x) for x, yd, ys in zip(dynamic.x, dynamic.y, static.y) if yd != ys
    ]
    if differing:
        print(
            "\nThe two strategies disagree at seconds "
            + ", ".join(str(s) for s in differing[:10])
            + " — the adaptive τ keeps tracking the true number of density "
            "mountains while the static τ goes stale as the clusters move."
        )
    else:
        print("\nBoth strategies agree on this run; try a different seed or static tau.")


if __name__ == "__main__":
    main()
