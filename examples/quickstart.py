#!/usr/bin/env python3
"""Quickstart: cluster an evolving 2-D stream with EDMStream.

Generates the SDS synthetic stream (two Gaussian clusters that merge, a new
cluster that emerges, a disappearance and a split — the Figure 6 script),
feeds it into EDMStream and prints:

* the number of clusters at every second of stream time,
* the cluster evolution events the tracker detected,
* the final decision graph (ρ, δ of the active cluster-cells), and
* predictions served from an immutable :class:`~repro.api.ClusterSnapshot` —
  the canonical ingest/serve split: ``learn_one`` / ``learn_many`` mutate the
  live model, ``request_clustering()`` publishes a frozen, versioned view,
  and ``predict_many`` answers query batches entirely off that view.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import EDMStream
from repro.dp import DecisionGraph
from repro.streams import SDSGenerator


def main() -> None:
    rate = 1000.0
    stream = SDSGenerator(n_points=20000, rate=rate, seed=7).generate()

    # decay_lambda = rate gives a per-point forgetting factor of 0.998, so the
    # 20-second evolution of the stream is visible (see EXPERIMENTS.md).
    model = EDMStream(
        radius=0.3,
        beta=0.0021,
        decay_a=0.998,
        decay_lambda=rate,
        stream_rate=rate,
    )

    clusters_per_second = {}
    for point in stream:
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
        clusters_per_second[int(point.timestamp) + 1] = model.n_clusters

    print("clusters over time")
    print("  second :", " ".join(f"{s:>3d}" for s in sorted(clusters_per_second)))
    print("  count  :", " ".join(f"{clusters_per_second[s]:>3d}" for s in sorted(clusters_per_second)))

    print("\ncluster evolution events")
    for event in model.evolution.events:
        if event.event_type.value in ("merge", "split", "disappear") or (
            event.event_type.value == "emerge" and event.time > 1.0
        ):
            print(f"  {event}")

    print("\nfinal state")
    summary = model.summary()
    print(f"  active cells:   {summary['active_cells']}")
    print(f"  inactive cells: {summary['inactive_cells']}")
    print(f"  clusters:       {summary['clusters']}")
    print(f"  tau:            {summary['tau']:.3f}  (alpha={summary['alpha']:.2f})")

    graph_points = model.decision_graph()
    graph = DecisionGraph(
        rho=[rho for rho, _, _ in graph_points],
        delta=[min(delta, 10.0) for _, delta, _ in graph_points],
    )
    print("\ndecision graph (rho on x, delta on y, '-' marks tau)")
    print(graph.render(width=60, height=14, tau=model.tau))

    # Serve predictions from an immutable snapshot: one vectorised batch
    # query, no lock on (and no reference into) the live model.
    snapshot = model.request_clustering()
    print(f"\nserving snapshot: version {snapshot.version}, "
          f"{snapshot.n_cells} seeds, {snapshot.n_clusters} clusters")
    probes = [(8.0, 9.5), (7.5, 6.5), (1.0, 1.0)]
    labels = snapshot.predict_many(probes)
    print("predictions for probe points (served off the snapshot)")
    for probe, label in zip(probes, labels):
        meaning = "outlier" if label == snapshot.outlier_label else f"cluster {label}"
        stable = snapshot.stable_label_of(int(label))
        print(f"  {probe} -> {meaning} (stable serving id {stable})")


if __name__ == "__main__":
    main()
