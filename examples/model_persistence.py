#!/usr/bin/env python3
"""Saving and restoring a running EDMStream model.

A stream clusterer deployed in production (the paper's news recommendation
use case runs for weeks) must survive restarts without replaying the whole
stream.  This demo:

1. clusters the first half of a two-cluster stream,
2. saves the model to a JSON snapshot,
3. loads it back into a fresh process-like state, and
4. continues clustering the second half with the restored model,

verifying along the way that the restored model predicts identically and
keeps learning seamlessly.

Run with::

    python examples/model_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import EDMStream
from repro.core.persistence import load_model, save_model
from repro.harness import format_table
from repro.streams import stream_from_arrays


def make_stream(n=6000, seed=13):
    """Two Gaussian blobs, shuffled, as a 1,000 pt/s stream."""
    rng = np.random.default_rng(seed)
    a = rng.normal((0.0, 0.0), 0.4, size=(n // 2, 2))
    b = rng.normal((7.0, 7.0), 0.4, size=(n // 2, 2))
    values = np.vstack([a, b])
    labels = np.asarray([0] * (n // 2) + [1] * (n // 2))
    order = rng.permutation(n)
    return stream_from_arrays(values[order], labels[order], rate=1000.0, name="two-blobs")


def main() -> None:
    stream = make_stream()
    half = len(stream) // 2

    model = EDMStream(radius=0.5, beta=0.0021, stream_rate=stream.rate)
    for point in stream.prefix(half):
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)

    snapshot_path = Path(tempfile.gettempdir()) / "edmstream_demo_snapshot.json"
    save_model(model, snapshot_path)
    print(f"saved model after {model.n_points} points to {snapshot_path} "
          f"({snapshot_path.stat().st_size} bytes)")

    restored = load_model(snapshot_path)
    queries = [(0.0, 0.0), (7.0, 7.0), (3.5, 3.5)]
    # Serve both models through their published ClusterSnapshots: one batch
    # query each, and the restored model must answer identically.
    original_labels = model.request_clustering().predict_many(queries)
    restored_labels = restored.request_clustering().predict_many(queries)
    print("\npredictions before vs after the restore (snapshot-served)")
    print(
        format_table(
            [
                {
                    "query": str(q),
                    "original": int(original_labels[i]),
                    "restored": int(restored_labels[i]),
                }
                for i, q in enumerate(queries)
            ]
        )
    )

    for point in stream[half:]:
        restored.learn_one(point.values, timestamp=point.timestamp, label=point.label)

    print("\nstate after continuing on the restored model")
    print(
        format_table(
            [
                {
                    "points": restored.n_points,
                    "clusters": restored.n_clusters,
                    "active cells": restored.n_active_cells,
                    "inactive cells": restored.n_inactive_cells,
                    "tau": round(restored.tau, 3) if restored.tau else None,
                }
            ]
        )
    )
    print("\nThe restored model carries on exactly where the original stopped —")
    print("no stream replay, no re-initialisation, same clustering.")


if __name__ == "__main__":
    main()
