#!/usr/bin/env python3
"""Activity monitoring on a body-sensor stream (PAMAP2-like workload).

PAMAP2-style sensor streams emit long contiguous sessions of a single
activity; clusters therefore *emerge* when an activity starts and *decay*
when it ends.  This example shows how to use the evolution log and the
outlier reservoir statistics to monitor such a stream: it prints, for each
activity session boundary detected, the corresponding cluster emergence or
disappearance, and reports how large the outlier reservoir grew relative to
its theoretical upper bound (Figure 16).

Run with::

    python examples/activity_monitoring.py
"""

from __future__ import annotations

from repro import EDMStream
from repro.core import EvolutionType
from repro.harness.experiments import choose_radius
from repro.streams import pamap2_surrogate


def main() -> None:
    stream = pamap2_surrogate(n_points=15000, rate=1000.0, seed=51)
    radius = choose_radius(stream)
    rate = stream.rate

    model = EDMStream(
        radius=radius,
        beta=0.0021,
        decay_a=0.998,
        decay_lambda=rate,   # forget a session shortly after it ends
        stream_rate=rate,
    )

    # Track where the ground-truth activity changes, to compare against the
    # detected cluster evolution events.
    session_boundaries = []
    previous_label = None
    for point in stream:
        if point.label != previous_label:
            session_boundaries.append((point.timestamp, point.label))
            previous_label = point.label
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)

    print(f"stream: {stream.name}, {len(stream)} readings, {stream.dimension} sensor channels")
    print(f"radius r = {radius:.2f}\n")

    print("ground-truth activity sessions (start time, activity id)")
    for start, label in session_boundaries:
        print(f"  t={start:7.2f}s  activity {label}")

    print("\ndetected cluster emergences and disappearances")
    for event in model.evolution.events:
        if event.event_type not in (EvolutionType.EMERGE, EvolutionType.DISAPPEAR):
            continue
        print(f"  t={event.time:7.2f}s  {event.event_type.value:<9s} {event.description}")

    counts = model.evolution.counts()
    print(
        f"\nevent totals: {counts['emerge']} emerge, {counts['disappear']} disappear, "
        f"{counts['merge']} merge, {counts['split']} split"
    )

    snapshot = model.request_clustering()
    print(
        f"\nserving snapshot v{snapshot.version}: {snapshot.n_clusters} activity "
        f"clusters over {snapshot.n_cells} active cells, served without "
        "touching the live model"
    )

    upper_bound = model.reservoir.size_upper_bound
    peak = max((size for _, size in model.reservoir_size_history), default=0)
    print(
        f"\noutlier reservoir: peak size {peak} cells, theoretical upper bound "
        f"{upper_bound:.0f} cells ({'within' if peak <= upper_bound else 'ABOVE'} bound)"
    )
    print(f"outdated cells recycled so far: {model.reservoir.total_deleted}")


if __name__ == "__main__":
    main()
