#!/usr/bin/env python3
"""Concept-drift monitoring with EDMStream on a moving-RBF stream.

The paper's motivating scenarios (news topics, network traffic, sensor data)
all drift: dense regions move, appear and fade.  This demo generates a
moving-RBF stream (five Gaussian kernels whose centroids wander around the
domain), clusters it with EDMStream, and prints

* the number of clusters and active cluster-cells over time,
* the cluster-evolution events the DP-Tree tracker emits while the kernels
  wander, and
* a comparison of the decayed model against a "no decay" configuration to
  show why the decay model matters under drift.

Run with::

    python examples/drift_monitoring.py
"""

from __future__ import annotations

from repro import EDMStream
from repro.evaluation import purity
from repro.harness import format_table
from repro.streams import RBFDriftGenerator


def run_model(stream, decay_lambda, rate):
    """Feed the stream into a fresh model; return (model, per-second cluster counts)."""
    model = EDMStream(
        radius=0.4,
        beta=0.0021,
        decay_a=0.998,
        decay_lambda=decay_lambda,
        stream_rate=rate,
    )
    clusters_per_second = {}
    for point in stream:
        model.learn_one(point.values, timestamp=point.timestamp, label=point.label)
        clusters_per_second[int(point.timestamp) + 1] = model.n_clusters
    return model, clusters_per_second


def window_purity(model, stream, window=1000):
    """Purity of the model's predictions over the last ``window`` points.

    The whole window is answered by one vectorised ``predict_many`` batch
    query against the model's published snapshot.
    """
    recent = [p for p in stream.points[-window:] if p.label is not None and p.label >= 0]
    true_labels = [p.label for p in recent]
    predicted = [int(v) for v in model.predict_many([p.values for p in recent])]
    return purity(true_labels, predicted)


def main() -> None:
    rate = 1000.0
    stream = RBFDriftGenerator(
        n_points=12000,
        n_kernels=5,
        dimension=2,
        drift_speed=0.4,
        kernel_std=0.25,
        rate=rate,
        seed=5,
    ).generate()

    # decay_lambda = rate gives a per-point forgetting factor of 0.998 so the
    # 12-second drift is visible; the second model never forgets.
    decayed, decayed_counts = run_model(stream, decay_lambda=rate, rate=rate)
    frozen, frozen_counts = run_model(stream, decay_lambda=1e-6, rate=rate)

    print("clusters per second (decayed vs no-decay model)")
    rows = [
        {
            "second": second,
            "decayed": decayed_counts[second],
            "no decay": frozen_counts.get(second, ""),
        }
        for second in sorted(decayed_counts)
    ]
    print(format_table(rows))

    print("\nevolution events emitted by the decayed model while the kernels wander")
    interesting = [
        event
        for event in decayed.evolution.events
        if event.event_type.value in ("merge", "split", "disappear")
        or (event.event_type.value == "emerge" and event.time > 1.0)
    ]
    for event in interesting[:20]:
        print(f"  {event}")
    if not interesting:
        print("  (no structural events on this run — try a higher drift_speed)")

    print("\nquality over the most recent 1,000 points")
    print(
        format_table(
            [
                {"model": "decayed", "recent purity": round(window_purity(decayed, stream), 3),
                 "active cells": decayed.n_active_cells},
                {"model": "no decay", "recent purity": round(window_purity(frozen, stream), 3),
                 "active cells": frozen.n_active_cells},
            ]
        )
    )
    print(
        "\nThe decayed model forgets stale kernel positions, so its active "
        "cells follow the drift; the no-decay model keeps every region it has "
        "ever seen active."
    )


if __name__ == "__main__":
    main()
