#!/usr/bin/env python3
"""Network-intrusion monitoring: EDMStream vs the two-phase baselines.

The paper motivates stream clustering with applications such as network
intrusion detection: connection records arrive continuously, attack bursts
form new dense regions, and an operator wants the current cluster structure
*now*, not after the next offline re-clustering.

This example replays a KDDCUP99-like surrogate stream (bursty, heavily
imbalanced attack classes) into EDMStream, DenStream and D-Stream, compares

* the response time for an up-to-date clustering,
* the achieved throughput, and
* the cluster quality (CMM) over a sliding window,

and prints a small report — a miniature of Figures 9, 10 and 13.

Run with::

    python examples/network_intrusion.py
"""

from __future__ import annotations

from repro.harness import StreamRunner, format_table
from repro.harness.experiments import choose_radius, default_algorithms
from repro.streams import kddcup99_surrogate


def main() -> None:
    stream = kddcup99_surrogate(n_points=12000, rate=1000.0)
    radius = choose_radius(stream)
    print(f"stream: {stream.name}, {len(stream)} points, {stream.dimension} attributes")
    print(f"cluster-cell radius r = {radius:.1f} (2% pairwise-distance percentile)\n")

    algorithms = default_algorithms(
        stream, radius=radius, include=("EDMStream", "DenStream", "D-Stream")
    )
    runner = StreamRunner(checkpoint_every=3000, quality_window=500, evaluate_quality=True)

    rows = []
    for name, algorithm in algorithms.items():
        metrics = runner.run(algorithm, stream, algorithm_name=name)
        rows.append(
            {
                "algorithm": name,
                "response time (us)": round(metrics.mean_response_time_us, 1),
                "throughput (pt/s)": round(metrics.mean_throughput, 0),
                "CMM": round(metrics.mean_cmm, 3),
                "clusters": metrics.n_clusters[-1] if metrics.n_clusters else 0,
            }
        )

    print(format_table(rows))
    edm = next(r for r in rows if r["algorithm"] == "EDMStream")
    others = [r for r in rows if r["algorithm"] != "EDMStream"]
    best_other = min(o["response time (us)"] for o in others)
    print(
        f"\nEDMStream responds {best_other / max(edm['response time (us)'], 1e-9):.1f}x faster "
        "than the best two-phase baseline on this stream."
    )

    # An operator console would now serve "which cluster is this connection
    # in?" at query time, off an immutable snapshot, while ingestion keeps
    # running — one batch query against the frozen seed matrix.
    snapshot = algorithms["EDMStream"].request_clustering()
    probe_values = [p.values for p in stream.points[-1000:]]
    labels = snapshot.predict_many(probe_values)
    flagged = int((labels == snapshot.outlier_label).sum())
    print(
        f"\nserving snapshot v{snapshot.version}: {snapshot.n_clusters} traffic clusters; "
        f"{flagged}/{len(probe_values)} of the last 1000 connections fall outside "
        "every cluster (candidate anomalies)."
    )


if __name__ == "__main__":
    main()
